#ifndef MJOIN_STRATEGY_BUILDER_H_
#define MJOIN_STRATEGY_BUILDER_H_

#include <string>
#include <vector>

#include "plan/query.h"
#include "xra/plan.h"

namespace mjoin {

/// Shared scaffolding for the four strategy implementations: owns the
/// ParallelPlan under construction and provides the recurring wiring
/// patterns (colocated base-relation scans, store + rescan of intermediate
/// results, direct pipelined edges, trigger groups).
class PlanBuilder {
 public:
  /// `analysis` must come from AnalyzeQuery(query) and outlive the builder.
  PlanBuilder(const JoinQuery& query, const QueryAnalysis& analysis,
              uint32_t num_processors, std::string strategy_name);

  /// Adds a trigger group; returns its index. Groups fire once all deps
  /// have fired (group 0: at query start).
  int AddGroup(std::vector<TriggerDep> deps);

  /// Adds a join op executing tree node `node_id` on `processors`, in
  /// trigger group `group`. Kind must be a join kind.
  int AddJoinOp(XraOpKind kind, int node_id, std::vector<uint32_t> processors,
                int group);

  /// Adds a base-relation scan colocated with join op `join_op`, feeding
  /// its `port`. The relation is declustered over the join's processors on
  /// the join key (ideal initial fragmentation), so the edge is local.
  int AddScanFor(int join_op, int port, const std::string& relation,
                 int group);

  /// Adds a rescan of stored result `result_id` feeding `port` of
  /// `join_op`: runs on the storing op's processors and hash-splits to the
  /// join (an n x m refragmentation).
  int AddRescanFor(int join_op, int port, int result_id, int group);

  /// Connects producer join `producer_op` directly (pipelined, hash-split)
  /// to `port` of `consumer_op`.
  void ConnectDirect(int producer_op, int consumer_op, int port);

  /// Marks `op` to store its output; returns the new result id.
  int StoreOutput(int op);

  /// Marks `op` as producing the final query result (stored).
  void SetFinalResult(int op);

  /// The character identifying tree node `node_id` in utilization
  /// diagrams: joins are numbered '1'..'9' then 'a'.. in post order.
  char TraceLabelFor(int node_id) const;

  /// Validates and returns the plan.
  StatusOr<ParallelPlan> Finish();

  const JoinQuery& query() const { return *query_; }
  const QueryAnalysis& analysis() const { return *analysis_; }
  const ParallelPlan& plan() const { return plan_; }

 private:
  XraOp& op(int id) { return plan_.ops[static_cast<size_t>(id)]; }
  int NewOp(XraOpKind kind, int group);

  const JoinQuery* query_;
  const QueryAnalysis* analysis_;
  ParallelPlan plan_;
  std::vector<char> node_labels_;
};

/// Keys a join port: the split/fragmentation column for data entering that
/// port, taken from the op's JoinSpec.
size_t PortKey(const XraOp& join_op, int port);

}  // namespace mjoin

#endif  // MJOIN_STRATEGY_BUILDER_H_
