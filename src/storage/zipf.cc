#include "storage/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "storage/wisconsin.h"

namespace mjoin {

ZipfGenerator::ZipfGenerator(uint32_t n, double theta)
    : n_(n), theta_(theta) {
  MJOIN_CHECK(n > 0);
  MJOIN_CHECK(theta >= 0);
  cdf_.resize(n);
  double sum = 0;
  for (uint32_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k) + 1.0, theta);
    cdf_[k] = sum;
  }
  for (uint32_t k = 0; k < n; ++k) cdf_[k] /= sum;
}

uint32_t ZipfGenerator::Next(Random* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint32_t>(it - cdf_.begin());
}

double ZipfGenerator::TopProbability() const { return cdf_[0]; }

Relation GenerateSkewedWisconsin(uint32_t cardinality, uint64_t seed,
                                 double theta) {
  static const char* kString4Values[] = {"AAAA", "HHHH", "OOOO", "VVVV"};

  Relation rel(WisconsinSchema());
  rel.Reserve(cardinality);

  Random rng(seed);
  ZipfGenerator zipf(cardinality, theta);
  std::vector<uint32_t> perm2 = rng.Permutation(cardinality);

  for (uint32_t i = 0; i < cardinality; ++i) {
    int32_t u1 = static_cast<int32_t>(zipf.Next(&rng));
    int32_t u2 = static_cast<int32_t>(perm2[i]);
    TupleWriter w = rel.AppendTuple();
    w.SetInt32(kUnique1, u1);
    w.SetInt32(kUnique2, u2);
    w.SetInt32(kTwo, u1 % 2);
    w.SetInt32(kFour, u1 % 4);
    w.SetInt32(kTen, u1 % 10);
    w.SetInt32(kTwenty, u1 % 20);
    w.SetInt32(kOnePercent, u1 % 100);
    w.SetInt32(kTenPercent, u1 % 10);
    w.SetInt32(kTwentyPercent, u1 % 5);
    w.SetInt32(kFiftyPercent, u1 % 2);
    w.SetInt32(kUnique3, u1);
    w.SetInt32(kEvenOnePercent, (u1 % 100) * 2);
    w.SetInt32(kOddOnePercent, (u1 % 100) * 2 + 1);
    w.SetString(kStringU1, WisconsinString(u1));
    w.SetString(kStringU2, WisconsinString(u2));
    w.SetString(kString4, std::string(52, kString4Values[i % 4][0]));
  }
  return rel;
}

}  // namespace mjoin
