#ifndef MJOIN_STORAGE_TUPLE_H_
#define MJOIN_STORAGE_TUPLE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/logging.h"
#include "storage/schema.h"

namespace mjoin {

/// A read-only view over one fixed-layout row. Does not own the bytes; the
/// backing storage (Relation or TupleBatch) must outlive the view.
class TupleRef {
 public:
  TupleRef(const std::byte* data, const Schema* schema)
      : data_(data), schema_(schema) {}

  const std::byte* data() const { return data_; }
  const Schema& schema() const { return *schema_; }

  int32_t GetInt32(size_t col) const {
    MJOIN_DCHECK(schema_->column(col).type == ColumnType::kInt32);
    int32_t value;
    std::memcpy(&value, data_ + schema_->offset(col), sizeof(value));
    return value;
  }

  int64_t GetInt64(size_t col) const {
    MJOIN_DCHECK(schema_->column(col).type == ColumnType::kInt64);
    int64_t value;
    std::memcpy(&value, data_ + schema_->offset(col), sizeof(value));
    return value;
  }

  std::string_view GetString(size_t col) const {
    MJOIN_DCHECK(schema_->column(col).type == ColumnType::kFixedString);
    return std::string_view(
        reinterpret_cast<const char*>(data_ + schema_->offset(col)),
        schema_->column(col).width);
  }

  /// "(5, 17, 'AAAAx...')" — for tests and debugging.
  std::string ToString() const;

 private:
  const std::byte* data_;
  const Schema* schema_;
};

/// A mutable single-row buffer used to assemble tuples field by field.
class TupleWriter {
 public:
  TupleWriter(std::byte* data, const Schema* schema)
      : data_(data), schema_(schema) {}

  std::byte* data() { return data_; }

  void SetInt32(size_t col, int32_t value) {
    MJOIN_DCHECK(schema_->column(col).type == ColumnType::kInt32);
    std::memcpy(data_ + schema_->offset(col), &value, sizeof(value));
  }

  void SetInt64(size_t col, int64_t value) {
    MJOIN_DCHECK(schema_->column(col).type == ColumnType::kInt64);
    std::memcpy(data_ + schema_->offset(col), &value, sizeof(value));
  }

  /// Copies `text` into the fixed-width slot, space-padded / truncated.
  void SetString(size_t col, std::string_view text) {
    MJOIN_DCHECK(schema_->column(col).type == ColumnType::kFixedString);
    uint32_t width = schema_->column(col).width;
    char* dst = reinterpret_cast<char*>(data_ + schema_->offset(col));
    size_t n = std::min<size_t>(text.size(), width);
    std::memcpy(dst, text.data(), n);
    if (n < width) std::memset(dst + n, ' ', width - n);
  }

  /// Copies raw bytes of column `src_col` of `src` into column `dst_col`.
  /// Widths must match.
  void CopyColumn(size_t dst_col, const TupleRef& src, size_t src_col) {
    MJOIN_DCHECK(schema_->column(dst_col).width ==
                 src.schema().column(src_col).width);
    std::memcpy(data_ + schema_->offset(dst_col),
                src.data() + src.schema().offset(src_col),
                schema_->column(dst_col).width);
  }

 private:
  std::byte* data_;
  const Schema* schema_;
};

}  // namespace mjoin

#endif  // MJOIN_STORAGE_TUPLE_H_
