#include "storage/relation.h"

#include "common/string_util.h"

namespace mjoin {

Relation Relation::Clone() const {
  Relation copy(schema_);
  copy.data_ = data_;
  return copy;
}

std::string Relation::ToString(size_t limit) const {
  std::string out =
      StrCat("Relation ", schema_.ToString(), " [", num_tuples(), " tuples]\n");
  size_t n = std::min(limit, num_tuples());
  for (size_t i = 0; i < n; ++i) {
    out += "  ";
    out += tuple(i).ToString();
    out += "\n";
  }
  if (n < num_tuples()) out += StrCat("  ... (", num_tuples() - n, " more)\n");
  return out;
}

}  // namespace mjoin
