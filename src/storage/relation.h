#ifndef MJOIN_STORAGE_RELATION_H_
#define MJOIN_STORAGE_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/tuple.h"

namespace mjoin {

/// A main-memory row-store relation (or fragment of one): a schema plus a
/// contiguous array of fixed-width rows, mirroring PRISMA/DB's in-memory
/// fragments. Move-only would be safest, but fragments are copied when
/// relations are (re-)partitioned, so copying is allowed and explicit at
/// call sites via Clone().
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  /// Deep copy (storage is duplicated).
  Relation Clone() const;

  const Schema& schema() const { return schema_; }
  size_t num_tuples() const {
    return schema_.tuple_size() == 0 ? 0 : data_.size() / schema_.tuple_size();
  }
  size_t byte_size() const { return data_.size(); }

  void Reserve(size_t num_tuples) {
    data_.reserve(num_tuples * schema_.tuple_size());
  }

  /// Appends a row; `row` must point at schema().tuple_size() bytes.
  void AppendRow(const std::byte* row) {
    data_.insert(data_.end(), row, row + schema_.tuple_size());
  }

  /// Appends `count` contiguous rows (count * tuple_size() bytes) in one
  /// copy.
  void AppendRows(const std::byte* rows, size_t count) {
    data_.insert(data_.end(), rows, rows + count * schema_.tuple_size());
  }

  /// Appends an uninitialized row and returns a writer for it. The writer
  /// is invalidated by the next append.
  TupleWriter AppendTuple() {
    size_t old = data_.size();
    data_.resize(old + schema_.tuple_size());
    return TupleWriter(data_.data() + old, &schema_);
  }

  TupleRef tuple(size_t i) const {
    return TupleRef(data_.data() + i * schema_.tuple_size(), &schema_);
  }

  const std::byte* raw_data() const { return data_.data(); }

  /// Multi-line dump of up to `limit` tuples, for tests/debugging.
  std::string ToString(size_t limit = 20) const;

 private:
  Schema schema_;
  std::vector<std::byte> data_;
};

}  // namespace mjoin

#endif  // MJOIN_STORAGE_RELATION_H_
