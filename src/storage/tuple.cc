#include "storage/tuple.h"

#include "common/string_util.h"

namespace mjoin {

std::string TupleRef::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(schema_->num_columns());
  for (size_t c = 0; c < schema_->num_columns(); ++c) {
    if (schema_->column(c).type == ColumnType::kInt32) {
      parts.push_back(StrCat(GetInt32(c)));
    } else if (schema_->column(c).type == ColumnType::kInt64) {
      parts.push_back(StrCat(GetInt64(c)));
    } else {
      std::string_view s = GetString(c);
      // Trim trailing spaces for readability.
      size_t end = s.find_last_not_of(' ');
      parts.push_back(
          StrCat("'", end == std::string_view::npos ? "" : s.substr(0, end + 1),
                 "'"));
    }
  }
  return StrCat("(", StrJoin(parts, ", "), ")");
}

}  // namespace mjoin
