#include "storage/schema.h"

#include "common/string_util.h"

namespace mjoin {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  offsets_.reserve(columns_.size());
  uint32_t offset = 0;
  for (const Column& col : columns_) {
    offsets_.push_back(offset);
    offset += col.width;
  }
  tuple_size_ = offset;
}

StatusOr<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound(StrCat("no column named '", name, "'"));
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const Column& col : columns_) {
    if (col.type == ColumnType::kInt32) {
      parts.push_back(StrCat(col.name, ":i32"));
    } else if (col.type == ColumnType::kInt64) {
      parts.push_back(StrCat(col.name, ":i64"));
    } else {
      parts.push_back(StrCat(col.name, ":str", col.width));
    }
  }
  return StrCat("(", StrJoin(parts, ", "), ")");
}

}  // namespace mjoin
