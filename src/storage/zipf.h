#ifndef MJOIN_STORAGE_ZIPF_H_
#define MJOIN_STORAGE_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "storage/relation.h"

namespace mjoin {

/// Zipf-distributed sampler over {0, 1, ..., n-1}: P(k) proportional to
/// 1/(k+1)^theta. theta = 0 is uniform; theta = 1 the classic Zipf. Used
/// to generate skewed join attributes — the paper assumes "non-skewed data
/// partitioning" (§3.5) and leaves real-life (skewed) workloads as future
/// work; the skew extension benchmarks what happens without that
/// assumption.
class ZipfGenerator {
 public:
  /// Precomputes the inverse CDF table (O(n) space).
  ZipfGenerator(uint32_t n, double theta);

  /// Draws one sample using `rng`.
  uint32_t Next(Random* rng) const;

  uint32_t n() const { return n_; }
  double theta() const { return theta_; }

  /// Probability of the most frequent value.
  double TopProbability() const;

 private:
  uint32_t n_;
  double theta_;
  std::vector<double> cdf_;
};

/// A Wisconsin-like relation whose unique1 column is *not* unique but iid
/// Zipf(theta)-distributed over [0, cardinality); unique2 remains an
/// independent permutation and the derived/string attributes follow the
/// (now skewed) first attribute. With theta = 0 keys are iid uniform.
Relation GenerateSkewedWisconsin(uint32_t cardinality, uint64_t seed,
                                 double theta);

}  // namespace mjoin

#endif  // MJOIN_STORAGE_ZIPF_H_
