#include "storage/partitioner.h"

#include "common/random.h"
#include "common/string_util.h"

namespace mjoin {

uint64_t HashJoinKey(int32_t key) {
  return Mix64(static_cast<uint64_t>(static_cast<uint32_t>(key)));
}

namespace {

Status CheckKeyColumn(const Relation& input, size_t key_column) {
  if (key_column >= input.schema().num_columns()) {
    return Status::OutOfRange(
        StrCat("key column ", key_column, " out of range; schema has ",
               input.schema().num_columns(), " columns"));
  }
  if (input.schema().column(key_column).type != ColumnType::kInt32) {
    return Status::InvalidArgument(
        StrCat("key column '", input.schema().column(key_column).name,
               "' is not int32"));
  }
  return Status::OK();
}

std::vector<Relation> MakeFragments(const Schema& schema, uint32_t n) {
  std::vector<Relation> fragments;
  fragments.reserve(n);
  for (uint32_t i = 0; i < n; ++i) fragments.emplace_back(schema);
  return fragments;
}

}  // namespace

StatusOr<std::vector<Relation>> HashPartition(const Relation& input,
                                              size_t key_column,
                                              uint32_t num_fragments) {
  if (num_fragments == 0) {
    return Status::InvalidArgument("num_fragments must be > 0");
  }
  MJOIN_RETURN_IF_ERROR(CheckKeyColumn(input, key_column));
  std::vector<Relation> fragments = MakeFragments(input.schema(), num_fragments);
  for (size_t i = 0; i < input.num_tuples(); ++i) {
    TupleRef t = input.tuple(i);
    uint32_t dest = FragmentOf(t.GetInt32(key_column), num_fragments);
    fragments[dest].AppendRow(t.data());
  }
  return fragments;
}

std::vector<Relation> RoundRobinPartition(const Relation& input,
                                          uint32_t num_fragments) {
  MJOIN_CHECK(num_fragments > 0);
  std::vector<Relation> fragments = MakeFragments(input.schema(), num_fragments);
  for (size_t i = 0; i < input.num_tuples(); ++i) {
    fragments[i % num_fragments].AppendRow(input.tuple(i).data());
  }
  return fragments;
}

StatusOr<std::vector<Relation>> RangePartition(const Relation& input,
                                               size_t key_column,
                                               uint32_t num_fragments,
                                               int32_t lo, int32_t hi) {
  if (num_fragments == 0) {
    return Status::InvalidArgument("num_fragments must be > 0");
  }
  if (lo > hi) return Status::InvalidArgument("range lo > hi");
  MJOIN_RETURN_IF_ERROR(CheckKeyColumn(input, key_column));
  std::vector<Relation> fragments = MakeFragments(input.schema(), num_fragments);
  double span = static_cast<double>(hi) - static_cast<double>(lo) + 1.0;
  for (size_t i = 0; i < input.num_tuples(); ++i) {
    TupleRef t = input.tuple(i);
    int32_t key = t.GetInt32(key_column);
    if (key < lo || key > hi) {
      return Status::OutOfRange(StrCat("key ", key, " outside [", lo, ", ",
                                       hi, "]"));
    }
    auto dest = static_cast<uint32_t>(
        (static_cast<double>(key) - static_cast<double>(lo)) / span *
        num_fragments);
    if (dest >= num_fragments) dest = num_fragments - 1;
    fragments[dest].AppendRow(t.data());
  }
  return fragments;
}

Relation ConcatFragments(const std::vector<Relation>& fragments) {
  MJOIN_CHECK(!fragments.empty());
  Relation out(fragments[0].schema());
  size_t total = 0;
  for (const Relation& f : fragments) total += f.num_tuples();
  out.Reserve(total);
  for (const Relation& f : fragments) {
    for (size_t i = 0; i < f.num_tuples(); ++i) out.AppendRow(f.tuple(i).data());
  }
  return out;
}

}  // namespace mjoin
