#ifndef MJOIN_STORAGE_PARTITIONER_H_
#define MJOIN_STORAGE_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "storage/relation.h"

namespace mjoin {

/// Hash used for all hash partitioning and join hash tables, so that a
/// relation fragmented on its join attribute lands build and probe tuples
/// with equal keys on the same fragment/bucket.
uint64_t HashJoinKey(int32_t key);

/// Maps a join key to one of `num_fragments` destinations.
inline uint32_t FragmentOf(int32_t key, uint32_t num_fragments) {
  return static_cast<uint32_t>(HashJoinKey(key) % num_fragments);
}

/// Splits `input` into `num_fragments` relations by hash of the int32
/// column `key_column` (the shared-nothing "declustering" of PRISMA/DB).
StatusOr<std::vector<Relation>> HashPartition(const Relation& input,
                                              size_t key_column,
                                              uint32_t num_fragments);

/// Splits `input` into `num_fragments` relations round-robin (used for
/// non-key declustering).
std::vector<Relation> RoundRobinPartition(const Relation& input,
                                          uint32_t num_fragments);

/// Splits `input` by equal-width ranges of the int32 column `key_column`
/// over [lo, hi].
StatusOr<std::vector<Relation>> RangePartition(const Relation& input,
                                               size_t key_column,
                                               uint32_t num_fragments,
                                               int32_t lo, int32_t hi);

/// Concatenates fragments back into one relation (order = fragment order).
Relation ConcatFragments(const std::vector<Relation>& fragments);

}  // namespace mjoin

#endif  // MJOIN_STORAGE_PARTITIONER_H_
