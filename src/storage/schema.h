#ifndef MJOIN_STORAGE_SCHEMA_H_
#define MJOIN_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"

namespace mjoin {

/// Column types supported by the engine. The storage layout is fixed-width
/// rows (like PRISMA/DB's main-memory tuples), so strings are fixed-length
/// character arrays.
enum class ColumnType {
  kInt32,
  kInt64,
  kFixedString,
};

/// A single column: name, type, and byte width (4 for kInt32; the declared
/// length for kFixedString).
struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt32;
  uint32_t width = 4;

  static Column Int32(std::string name) {
    return Column{std::move(name), ColumnType::kInt32, 4};
  }
  static Column Int64(std::string name) {
    return Column{std::move(name), ColumnType::kInt64, 8};
  }
  static Column FixedString(std::string name, uint32_t width) {
    return Column{std::move(name), ColumnType::kFixedString, width};
  }

  bool operator==(const Column& other) const = default;
};

/// A fixed row layout: columns packed back to back with no padding.
/// Schemas are small value types and are copied freely.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  const std::vector<Column>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  /// Total bytes per tuple.
  uint32_t tuple_size() const { return tuple_size_; }
  /// Byte offset of column `idx` within a tuple.
  uint32_t offset(size_t idx) const { return offsets_[idx]; }
  const Column& column(size_t idx) const { return columns_[idx]; }

  /// Index of the column with `name`, or NotFound.
  StatusOr<size_t> ColumnIndex(const std::string& name) const;

  /// "(unique1:i32, stringu1:str52, ...)".
  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }

 private:
  std::vector<Column> columns_;
  std::vector<uint32_t> offsets_;
  uint32_t tuple_size_ = 0;
};

}  // namespace mjoin

#endif  // MJOIN_STORAGE_SCHEMA_H_
