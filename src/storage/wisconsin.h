#ifndef MJOIN_STORAGE_WISCONSIN_H_
#define MJOIN_STORAGE_WISCONSIN_H_

#include <cstdint>

#include "storage/relation.h"

namespace mjoin {

/// The Wisconsin benchmark relation [BDT83], the test data of the paper:
/// 13 four-byte integer attributes plus three 52-character strings for a
/// total of 208 bytes per tuple.
///
/// Column order (indices):
///   0 unique1        random permutation of 0..n-1 (candidate key)
///   1 unique2        independent random permutation of 0..n-1. (The
///                    original benchmark makes unique2 sequential; the
///                    paper requires "no correlation ... between the first
///                    and second attribute of one relation", so both are
///                    independent permutations here.)
///   2 two .. 12      attributes derived from unique1 (mod fields etc.)
///  13 stringu1      string image of unique1
///  14 stringu2      string image of unique2
///  15 string4       cyclic AAAA/HHHH/OOOO/VVVV string
enum WisconsinColumn : size_t {
  kUnique1 = 0,
  kUnique2 = 1,
  kTwo = 2,
  kFour = 3,
  kTen = 4,
  kTwenty = 5,
  kOnePercent = 6,
  kTenPercent = 7,
  kTwentyPercent = 8,
  kFiftyPercent = 9,
  kUnique3 = 10,
  kEvenOnePercent = 11,
  kOddOnePercent = 12,
  kStringU1 = 13,
  kStringU2 = 14,
  kString4 = 15,
};

/// The 208-byte Wisconsin schema (shared instance).
const Schema& WisconsinSchema();

/// Generates a Wisconsin relation of `cardinality` tuples. unique1 and
/// unique2 are independent uniform permutations drawn from `seed`; two
/// relations generated from different seeds are uncorrelated, as the
/// paper's data generator guarantees.
Relation GenerateWisconsin(uint32_t cardinality, uint64_t seed);

/// Renders `value` as the benchmark's 52-char string attribute (7
/// significant base-26 capital letters followed by 'x' padding).
std::string WisconsinString(int32_t value);

}  // namespace mjoin

#endif  // MJOIN_STORAGE_WISCONSIN_H_
