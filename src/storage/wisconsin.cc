#include "storage/wisconsin.h"

#include "common/random.h"

namespace mjoin {

const Schema& WisconsinSchema() {
  // Function-local static reference so the Schema (non-trivial destructor)
  // is never destroyed; see the style guide's static-storage rules.
  // lint:allow-new intentional static leak, never destroyed
  static const Schema& schema = *new Schema({
      Column::Int32("unique1"),
      Column::Int32("unique2"),
      Column::Int32("two"),
      Column::Int32("four"),
      Column::Int32("ten"),
      Column::Int32("twenty"),
      Column::Int32("onePercent"),
      Column::Int32("tenPercent"),
      Column::Int32("twentyPercent"),
      Column::Int32("fiftyPercent"),
      Column::Int32("unique3"),
      Column::Int32("evenOnePercent"),
      Column::Int32("oddOnePercent"),
      Column::FixedString("stringu1", 52),
      Column::FixedString("stringu2", 52),
      Column::FixedString("string4", 52),
  });
  return schema;
}

std::string WisconsinString(int32_t value) {
  // Seven significant base-26 characters (most significant first),
  // followed by 45 'x' fillers: the classic Wisconsin string attribute.
  std::string out(52, 'x');
  uint32_t v = static_cast<uint32_t>(value);
  for (int i = 6; i >= 0; --i) {
    out[static_cast<size_t>(i)] = static_cast<char>('A' + (v % 26));
    v /= 26;
  }
  return out;
}

Relation GenerateWisconsin(uint32_t cardinality, uint64_t seed) {
  static const char* kString4Values[] = {"AAAA", "HHHH", "OOOO", "VVVV"};

  Relation rel(WisconsinSchema());
  rel.Reserve(cardinality);

  // Independent permutations for unique1 and unique2: decorrelated within
  // the relation, and (via distinct seeds) across relations.
  Random rng(seed);
  std::vector<uint32_t> perm1 = rng.Permutation(cardinality);
  std::vector<uint32_t> perm2 = rng.Permutation(cardinality);

  for (uint32_t i = 0; i < cardinality; ++i) {
    int32_t u1 = static_cast<int32_t>(perm1[i]);
    int32_t u2 = static_cast<int32_t>(perm2[i]);
    TupleWriter w = rel.AppendTuple();
    w.SetInt32(kUnique1, u1);
    w.SetInt32(kUnique2, u2);
    w.SetInt32(kTwo, u1 % 2);
    w.SetInt32(kFour, u1 % 4);
    w.SetInt32(kTen, u1 % 10);
    w.SetInt32(kTwenty, u1 % 20);
    w.SetInt32(kOnePercent, u1 % 100);
    w.SetInt32(kTenPercent, u1 % 10);
    w.SetInt32(kTwentyPercent, u1 % 5);
    w.SetInt32(kFiftyPercent, u1 % 2);
    w.SetInt32(kUnique3, u1);
    w.SetInt32(kEvenOnePercent, (u1 % 100) * 2);
    w.SetInt32(kOddOnePercent, (u1 % 100) * 2 + 1);
    w.SetString(kStringU1, WisconsinString(u1));
    w.SetString(kStringU2, WisconsinString(u2));
    w.SetString(kString4, std::string(52, kString4Values[i % 4][0]));
  }
  return rel;
}

}  // namespace mjoin
