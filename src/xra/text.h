#ifndef MJOIN_XRA_TEXT_H_
#define MJOIN_XRA_TEXT_H_

#include <string>

#include "common/statusor.h"
#include "xra/plan.h"

namespace mjoin {

/// Textual form of a ParallelPlan — the analogue of PRISMA/DB's textual
/// XRA language. The format is line-oriented and stable:
///
///   mjoin-plan v1
///   strategy FP
///   processors 16
///   results 1 final 0
///   schema 0 unique1:i32 unique2:i32 stringu1:str52 ...
///   group 0
///   group 1 dep 3 build-done
///   op 0 scan group 0 label "scan(rel0)" trace 49 procs 0,1,2,3
///      schema 0 relation rel0 feed 2 0 colocated
///   op 2 simple-hash-join group 0 label "join#4" trace 49 procs 0,1
///      schema 1 left 0 right 0 lkey 0 rkey 0 outputs L1,R1,R2 store 0
///
/// (an `op` record is one line; it is wrapped here for readability).
/// Schemas are interned structurally and referenced by index.
///
/// SerializePlan always produces a parseable string; ParsePlan validates
/// the reconstructed plan, so a parsed plan is ready for execution.
std::string SerializePlan(const ParallelPlan& plan);

StatusOr<ParallelPlan> ParsePlan(const std::string& text);

}  // namespace mjoin

#endif  // MJOIN_XRA_TEXT_H_
