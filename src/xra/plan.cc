#include "xra/plan.h"

#include <set>

#include "common/string_util.h"

namespace mjoin {

std::string XraOpKindName(XraOpKind kind) {
  switch (kind) {
    case XraOpKind::kScan:
      return "scan";
    case XraOpKind::kRescan:
      return "rescan";
    case XraOpKind::kSimpleHashJoin:
      return "simple-hash-join";
    case XraOpKind::kPipeliningHashJoin:
      return "pipelining-hash-join";
    case XraOpKind::kFilter:
      return "filter";
    case XraOpKind::kAggregate:
      return "aggregate";
    case XraOpKind::kSortMergeJoin:
      return "sort-merge-join";
  }
  return "?";
}

std::string MilestoneName(Milestone milestone) {
  switch (milestone) {
    case Milestone::kComplete:
      return "complete";
    case Milestone::kBuildDone:
      return "build-done";
  }
  return "?";
}

namespace {

Status ValidateOpBasics(const ParallelPlan& plan, const XraOp& op) {
  if (op.processors.empty()) {
    return Status::Internal(StrCat("op ", op.id, " has no processors"));
  }
  std::set<uint32_t> unique_processors;
  for (uint32_t p : op.processors) {
    if (p >= plan.num_processors) {
      return Status::Internal(StrCat("op ", op.id, " uses processor ", p,
                                     " >= P=", plan.num_processors));
    }
    if (!unique_processors.insert(p).second) {
      return Status::Internal(
          StrCat("op ", op.id, " lists processor ", p, " twice"));
    }
  }
  int outputs = (op.store_result >= 0 ? 1 : 0) + (op.consumer >= 0 ? 1 : 0);
  if (outputs != 1) {
    return Status::Internal(
        StrCat("op ", op.id, " must have exactly one output destination"));
  }
  if (op.output_schema == nullptr) {
    return Status::Internal(StrCat("op ", op.id, " has no output schema"));
  }
  return Status::OK();
}

/// Input ports an op kind exposes (scans and rescans are sources).
int NumInputPorts(XraOpKind kind) {
  switch (kind) {
    case XraOpKind::kSimpleHashJoin:
    case XraOpKind::kPipeliningHashJoin:
    case XraOpKind::kSortMergeJoin:
      return 2;
    case XraOpKind::kFilter:
    case XraOpKind::kAggregate:
      return 1;
    default:
      return 0;
  }
}

/// Forward-edge validation, from the producer's side. The consumer-side
/// checks (ValidateEdge / ValidateSingleInputEdge) only cover edges the
/// consumer's inputs[] actually names; a malformed plan whose op.consumer
/// points at an out-of-range op, a source, a bad port, or an op that reads
/// a *different* producer would sail through them — and the executors
/// route batches along the forward pointer, indexing the consumer's
/// instance array out of bounds when the fanouts disagree. Catch all of
/// that at Validate() time instead.
Status ValidateForwardEdge(const ParallelPlan& plan, const XraOp& op) {
  if (op.consumer < 0) return Status::OK();
  if (op.consumer >= static_cast<int>(plan.ops.size()) ||
      op.consumer == op.id) {
    return Status::Internal(
        StrCat("op ", op.id, " has bad consumer ", op.consumer));
  }
  const XraOp& consumer = plan.ops[static_cast<size_t>(op.consumer)];
  int ports = NumInputPorts(consumer.kind);
  if (op.consumer_port < 0 || op.consumer_port >= ports) {
    return Status::Internal(StrCat("op ", op.id, " feeds port ",
                                   op.consumer_port, " of op ", consumer.id,
                                   " which has ", ports, " input ports"));
  }
  const XraInput& input = consumer.inputs[op.consumer_port];
  if (input.producer != op.id) {
    return Status::Internal(
        StrCat("op ", op.id, " claims to feed op ", consumer.id, " port ",
               op.consumer_port, " but that port reads op ", input.producer));
  }
  if (input.routing == Routing::kColocated &&
      op.processors.size() != consumer.processors.size()) {
    return Status::Internal(StrCat(
        "colocated edge ", op.id, " -> ", consumer.id, " has producer fanout ",
        op.processors.size(), " but consumer fanout ",
        consumer.processors.size()));
  }
  return Status::OK();
}

Status ValidateEdge(const ParallelPlan& plan, const XraOp& consumer, int port) {
  const XraInput& input = consumer.inputs[port];
  if (input.producer < 0 ||
      input.producer >= static_cast<int>(plan.ops.size())) {
    return Status::Internal(StrCat("op ", consumer.id, " port ", port,
                                   " has bad producer ", input.producer));
  }
  const XraOp& producer = plan.ops[static_cast<size_t>(input.producer)];
  if (producer.consumer != consumer.id || producer.consumer_port != port) {
    return Status::Internal(StrCat("edge mismatch: op ", producer.id,
                                   " does not feed op ", consumer.id, " port ",
                                   port));
  }
  // Schema agreement with the join spec.
  const std::shared_ptr<const Schema>& expected =
      port == 0 ? consumer.join_spec.left_schema
                : consumer.join_spec.right_schema;
  if (!(*producer.output_schema == *expected)) {
    return Status::Internal(
        StrCat("schema mismatch on edge ", producer.id, " -> ", consumer.id,
               " port ", port, ": ", producer.output_schema->ToString(),
               " vs ", expected->ToString()));
  }
  size_t join_key =
      port == 0 ? consumer.join_spec.left_key : consumer.join_spec.right_key;
  if (input.routing == Routing::kHashSplit) {
    if (input.split_key != join_key) {
      return Status::Internal(
          StrCat("edge ", producer.id, " -> ", consumer.id, " port ", port,
                 " splits on column ", input.split_key,
                 " but the join key is column ", join_key,
                 " (results would be wrong)"));
    }
  } else {
    // Colocated: instance i feeds instance i on the same processor.
    if (producer.processors != consumer.processors) {
      return Status::Internal(
          StrCat("colocated edge ", producer.id, " -> ", consumer.id,
                 " has different processor lists"));
    }
  }
  return Status::OK();
}

// Validates the single input edge of a filter/aggregate op.
Status ValidateSingleInputEdge(const ParallelPlan& plan,
                               const XraOp& consumer) {
  const XraInput& input = consumer.inputs[0];
  if (input.producer < 0 ||
      input.producer >= static_cast<int>(plan.ops.size())) {
    return Status::Internal(StrCat("op ", consumer.id,
                                   " has bad producer ", input.producer));
  }
  const XraOp& producer = plan.ops[static_cast<size_t>(input.producer)];
  if (producer.consumer != consumer.id || producer.consumer_port != 0) {
    return Status::Internal(StrCat("edge mismatch: op ", producer.id,
                                   " does not feed op ", consumer.id));
  }
  if (consumer.input_schema == nullptr ||
      !(*producer.output_schema == *consumer.input_schema)) {
    return Status::Internal(
        StrCat("schema mismatch on edge ", producer.id, " -> ",
               consumer.id));
  }
  if (input.routing == Routing::kHashSplit) {
    if (input.split_key >= producer.output_schema->num_columns() ||
        producer.output_schema->column(input.split_key).type !=
            ColumnType::kInt32) {
      return Status::Internal(
          StrCat("edge into op ", consumer.id,
                 " splits on a non-int32 column"));
    }
    // Aggregation instances must own disjoint groups.
    if (consumer.kind == XraOpKind::kAggregate &&
        input.split_key != consumer.group_column) {
      return Status::Internal(
          StrCat("aggregate ", consumer.id, " input split on column ",
                 input.split_key, " but groups by column ",
                 consumer.group_column, " (results would be wrong)"));
    }
  } else {
    if (producer.processors != consumer.processors) {
      return Status::Internal(
          StrCat("colocated edge ", producer.id, " -> ", consumer.id,
                 " has different processor lists"));
    }
    if (consumer.kind == XraOpKind::kAggregate &&
        consumer.processors.size() > 1) {
      return Status::Internal(
          StrCat("aggregate ", consumer.id,
                 " has a colocated multi-instance input; groups would be "
                 "split across instances"));
    }
  }
  return Status::OK();
}

}  // namespace

Status ParallelPlan::Validate() const {
  if (num_processors == 0) return Status::Internal("plan has no processors");
  if (ops.empty()) return Status::Internal("plan has no operations");

  std::set<int> stored_ids;
  for (size_t i = 0; i < ops.size(); ++i) {
    const XraOp& op = ops[i];
    if (op.id != static_cast<int>(i)) {
      return Status::Internal(StrCat("op at index ", i, " has id ", op.id));
    }
    MJOIN_RETURN_IF_ERROR(ValidateOpBasics(*this, op));
    MJOIN_RETURN_IF_ERROR(ValidateForwardEdge(*this, op));
    if (op.store_result >= 0) {
      if (op.store_result >= num_results) {
        return Status::Internal(StrCat("op ", op.id, " stores result ",
                                       op.store_result, " >= num_results=",
                                       num_results));
      }
      if (!stored_ids.insert(op.store_result).second) {
        return Status::Internal(
            StrCat("result id ", op.store_result, " stored twice"));
      }
    }
    switch (op.kind) {
      case XraOpKind::kScan:
        if (op.relation.empty()) {
          return Status::Internal(StrCat("scan ", op.id, " has no relation"));
        }
        break;
      case XraOpKind::kRescan: {
        if (op.stored_result < 0 || op.stored_result >= num_results) {
          return Status::Internal(
              StrCat("rescan ", op.id, " reads bad result id ",
                     op.stored_result));
        }
        // The rescan must run exactly where the result fragments live.
        const XraOp* storer = nullptr;
        for (const XraOp& other : ops) {
          if (other.store_result == op.stored_result) storer = &other;
        }
        if (storer == nullptr) {
          return Status::Internal(StrCat("rescan ", op.id, " reads result ",
                                         op.stored_result,
                                         " which nobody stores"));
        }
        if (storer->processors != op.processors) {
          return Status::Internal(
              StrCat("rescan ", op.id, " not colocated with the fragments of "
                     "result ", op.stored_result));
        }
        break;
      }
      case XraOpKind::kSimpleHashJoin:
      case XraOpKind::kPipeliningHashJoin:
      case XraOpKind::kSortMergeJoin:
        MJOIN_RETURN_IF_ERROR(ValidateEdge(*this, op, 0));
        MJOIN_RETURN_IF_ERROR(ValidateEdge(*this, op, 1));
        if (!(*op.join_spec.output_schema == *op.output_schema)) {
          return Status::Internal(
              StrCat("join ", op.id, " output schema disagrees with spec"));
        }
        break;
      case XraOpKind::kFilter:
        MJOIN_RETURN_IF_ERROR(ValidateSingleInputEdge(*this, op));
        if (!(*op.output_schema == *op.input_schema)) {
          return Status::Internal(
              StrCat("filter ", op.id, " must not change the schema"));
        }
        break;
      case XraOpKind::kAggregate:
        MJOIN_RETURN_IF_ERROR(ValidateSingleInputEdge(*this, op));
        break;
    }
  }
  if (final_result < 0 || !stored_ids.contains(final_result)) {
    return Status::Internal("plan does not store a final result");
  }

  // Trigger groups: each op exactly once, matching indices; group 0 must
  // be dependency-free; deps must reference valid milestones.
  std::vector<int> seen(ops.size(), 0);
  if (groups.empty()) return Status::Internal("plan has no trigger groups");
  if (!groups[0].deps.empty()) {
    return Status::Internal("trigger group 0 must have no dependencies");
  }
  for (size_t g = 0; g < groups.size(); ++g) {
    for (int op_id : groups[g].ops) {
      if (op_id < 0 || op_id >= static_cast<int>(ops.size())) {
        return Status::Internal(StrCat("group ", g, " lists bad op ", op_id));
      }
      if (ops[static_cast<size_t>(op_id)].trigger_group !=
          static_cast<int>(g)) {
        return Status::Internal(StrCat("op ", op_id,
                                       " trigger_group field disagrees with "
                                       "group ", g));
      }
      ++seen[static_cast<size_t>(op_id)];
    }
    for (const TriggerDep& dep : groups[g].deps) {
      if (dep.op < 0 || dep.op >= static_cast<int>(ops.size())) {
        return Status::Internal(StrCat("group ", g, " depends on bad op ",
                                       dep.op));
      }
      if (dep.milestone == Milestone::kBuildDone &&
          ops[static_cast<size_t>(dep.op)].kind !=
              XraOpKind::kSimpleHashJoin) {
        return Status::Internal(
            StrCat("group ", g, " waits for build-done of non-simple-join op ",
                   dep.op));
      }
    }
  }
  for (size_t i = 0; i < ops.size(); ++i) {
    if (seen[i] != 1) {
      return Status::Internal(
          StrCat("op ", i, " appears in ", seen[i], " trigger groups"));
    }
  }

  // The paper's constraint: within one trigger group, two *join*
  // operations never share a processor.
  for (const TriggerGroup& group : groups) {
    std::set<uint32_t> join_processors;
    for (int op_id : group.ops) {
      const XraOp& op = ops[static_cast<size_t>(op_id)];
      if (!op.is_join()) continue;
      for (uint32_t p : op.processors) {
        if (!join_processors.insert(p).second) {
          return Status::Internal(
              StrCat("processor ", p,
                     " runs two concurrent joins in one trigger group"));
        }
      }
    }
  }
  return Status::OK();
}

uint64_t ParallelPlan::CountStreams() const {
  uint64_t streams = 0;
  for (const XraOp& op : ops) {
    if (op.consumer >= 0) {
      const XraOp& consumer = ops[static_cast<size_t>(op.consumer)];
      const XraInput& input = consumer.inputs[op.consumer_port];
      if (input.routing == Routing::kHashSplit) {
        streams += static_cast<uint64_t>(op.processors.size()) *
                   consumer.processors.size();
      }
    }
  }
  return streams;
}

uint64_t ParallelPlan::CountProcesses() const {
  uint64_t processes = 0;
  for (const XraOp& op : ops) processes += op.processors.size();
  return processes;
}

std::string ParallelPlan::ToString() const {
  std::string out = StrCat("ParallelPlan[", strategy, "] P=", num_processors,
                           " processes=", CountProcesses(),
                           " streams=", CountStreams(), "\n");
  for (size_t g = 0; g < groups.size(); ++g) {
    out += StrCat("  group ", g);
    if (!groups[g].deps.empty()) {
      std::vector<std::string> deps;
      for (const TriggerDep& dep : groups[g].deps) {
        deps.push_back(StrCat("op", dep.op, ".", MilestoneName(dep.milestone)));
      }
      out += StrCat(" after {", StrJoin(deps, ", "), "}");
    }
    out += ":\n";
    for (int op_id : groups[g].ops) {
      const XraOp& op = ops[static_cast<size_t>(op_id)];
      out += StrCat("    op", op.id, " ", XraOpKindName(op.kind), " '",
                    op.label, "' x", op.processors.size(), " on [",
                    op.processors.front(), "..", op.processors.back(), "]");
      if (op.kind == XraOpKind::kScan) out += StrCat(" rel=", op.relation);
      if (op.kind == XraOpKind::kRescan) {
        out += StrCat(" result=", op.stored_result);
      }
      if (op.store_result >= 0) {
        out += StrCat(" -> store result ", op.store_result);
      } else {
        const XraInput& input =
            ops[static_cast<size_t>(op.consumer)].inputs[op.consumer_port];
        out += StrCat(" -> op", op.consumer, ":", op.consumer_port,
                      input.routing == Routing::kColocated ? " (local)"
                                                           : " (split)");
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace mjoin
