#include "xra/text.h"

#include <charconv>
#include <map>
#include <sstream>
#include <vector>

#include "common/string_util.h"

namespace mjoin {

namespace {

// --- serialization -----------------------------------------------------------

std::string ColumnToken(const Column& column) {
  switch (column.type) {
    case ColumnType::kInt32:
      return StrCat(column.name, ":i32");
    case ColumnType::kInt64:
      return StrCat(column.name, ":i64");
    case ColumnType::kFixedString:
      return StrCat(column.name, ":str", column.width);
  }
  return "?";
}

std::string KindToken(XraOpKind kind) { return XraOpKindName(kind); }

std::string MilestoneToken(Milestone milestone) {
  return MilestoneName(milestone);
}

std::string CompareToken(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "eq";
    case CompareOp::kNe:
      return "ne";
    case CompareOp::kLt:
      return "lt";
    case CompareOp::kLe:
      return "le";
    case CompareOp::kGt:
      return "gt";
    case CompareOp::kGe:
      return "ge";
    case CompareOp::kBetween:
      return "between";
  }
  return "?";
}

/// Interns structurally-equal schemas and hands out stable indices.
class SchemaTable {
 public:
  size_t Intern(const std::shared_ptr<const Schema>& schema) {
    for (size_t i = 0; i < schemas_.size(); ++i) {
      if (*schemas_[i] == *schema) return i;
    }
    schemas_.push_back(schema);
    return schemas_.size() - 1;
  }

  const std::vector<std::shared_ptr<const Schema>>& schemas() const {
    return schemas_;
  }

 private:
  std::vector<std::shared_ptr<const Schema>> schemas_;
};

std::string ProcsToken(const std::vector<uint32_t>& processors) {
  std::vector<std::string> parts;
  parts.reserve(processors.size());
  for (uint32_t p : processors) parts.push_back(StrCat(p));
  return StrJoin(parts, ",");
}

std::string OutputsToken(const std::vector<JoinOutputColumn>& outputs) {
  std::vector<std::string> parts;
  parts.reserve(outputs.size());
  for (const JoinOutputColumn& oc : outputs) {
    parts.push_back(StrCat(oc.side == 0 ? "L" : "R", oc.column));
  }
  return StrJoin(parts, ",");
}

}  // namespace

std::string SerializePlan(const ParallelPlan& plan) {
  SchemaTable schemas;
  // Intern in a deterministic order first.
  for (const XraOp& op : plan.ops) {
    if (op.is_join()) {
      schemas.Intern(op.join_spec.left_schema);
      schemas.Intern(op.join_spec.right_schema);
    }
    if (op.input_schema != nullptr) schemas.Intern(op.input_schema);
    schemas.Intern(op.output_schema);
  }

  std::string out = "mjoin-plan v1\n";
  out += StrCat("strategy ", plan.strategy.empty() ? "-" : plan.strategy,
                "\n");
  out += StrCat("processors ", plan.num_processors, "\n");
  out += StrCat("results ", plan.num_results, " final ", plan.final_result,
                "\n");
  for (size_t i = 0; i < schemas.schemas().size(); ++i) {
    out += StrCat("schema ", i);
    for (const Column& column : schemas.schemas()[i]->columns()) {
      // Split concatenation: `"" + std::string&&` trips GCC 12's
      // -Wrestrict false positive (PR 105651) under -O2 -Werror.
      out += ' ';
      out += ColumnToken(column);
    }
    out += "\n";
  }
  for (size_t g = 0; g < plan.groups.size(); ++g) {
    out += StrCat("group ", g);
    for (const TriggerDep& dep : plan.groups[g].deps) {
      out += StrCat(" dep ", dep.op, " ", MilestoneToken(dep.milestone));
    }
    out += "\n";
  }
  for (const XraOp& op : plan.ops) {
    out += StrCat("op ", op.id, " ", KindToken(op.kind), " group ",
                  op.trigger_group, " label \"", op.label, "\" trace ",
                  static_cast<int>(op.trace_label), " procs ",
                  ProcsToken(op.processors), " schema ",
                  schemas.Intern(op.output_schema));
    switch (op.kind) {
      case XraOpKind::kScan:
        out += StrCat(" relation ", op.relation);
        break;
      case XraOpKind::kRescan:
        out += StrCat(" result ", op.stored_result);
        break;
      case XraOpKind::kSimpleHashJoin:
      case XraOpKind::kPipeliningHashJoin:
      case XraOpKind::kSortMergeJoin:
        out += StrCat(" left ", schemas.Intern(op.join_spec.left_schema),
                      " right ", schemas.Intern(op.join_spec.right_schema),
                      " lkey ", op.join_spec.left_key, " rkey ",
                      op.join_spec.right_key, " outputs ",
                      OutputsToken(op.join_spec.output_columns), " in0 ",
                      op.inputs[0].producer, " ",
                      op.inputs[0].routing == Routing::kColocated
                          ? "colocated"
                          : StrCat("split:", op.inputs[0].split_key),
                      " in1 ", op.inputs[1].producer, " ",
                      op.inputs[1].routing == Routing::kColocated
                          ? "colocated"
                          : StrCat("split:", op.inputs[1].split_key));
        break;
      case XraOpKind::kFilter:
        out += StrCat(" input ", schemas.Intern(op.input_schema), " col ",
                      op.filter.column, " cmp ", CompareToken(op.filter.op),
                      " value ", op.filter.value, " value2 ",
                      op.filter.value2, " in0 ", op.inputs[0].producer, " ",
                      op.inputs[0].routing == Routing::kColocated
                          ? "colocated"
                          : StrCat("split:", op.inputs[0].split_key));
        break;
      case XraOpKind::kAggregate:
        out += StrCat(" input ", schemas.Intern(op.input_schema),
                      " groupcol ", op.group_column, " valuecol ",
                      op.value_column, " in0 ", op.inputs[0].producer, " ",
                      op.inputs[0].routing == Routing::kColocated
                          ? "colocated"
                          : StrCat("split:", op.inputs[0].split_key));
        break;
    }
    if (op.store_result >= 0) {
      out += StrCat(" store ", op.store_result);
    } else {
      out += StrCat(" feed ", op.consumer, " ", op.consumer_port);
    }
    out += "\n";
  }
  return out;
}

namespace {

// --- parsing -----------------------------------------------------------------

/// Splits one line into tokens; a double-quoted token (used for labels)
/// may contain spaces.
StatusOr<std::vector<std::string>> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    if (line[i] == ' ') {
      ++i;
      continue;
    }
    if (line[i] == '"') {
      size_t end = line.find('"', i + 1);
      if (end == std::string::npos) {
        return Status::InvalidArgument("unterminated quote");
      }
      tokens.push_back(line.substr(i + 1, end - i - 1));
      i = end + 1;
    } else {
      size_t end = line.find(' ', i);
      if (end == std::string::npos) end = line.size();
      tokens.push_back(line.substr(i, end - i));
      i = end;
    }
  }
  return tokens;
}

StatusOr<int64_t> ParseInt(const std::string& token) {
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(),
                                   value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::InvalidArgument(StrCat("bad integer '", token, "'"));
  }
  return value;
}

StatusOr<Column> ParseColumn(const std::string& token) {
  size_t colon = token.rfind(':');
  if (colon == std::string::npos || colon == 0) {
    return Status::InvalidArgument(StrCat("bad column '", token, "'"));
  }
  std::string name = token.substr(0, colon);
  std::string type = token.substr(colon + 1);
  if (type == "i32") return Column::Int32(name);
  if (type == "i64") return Column::Int64(name);
  if (type.rfind("str", 0) == 0) {
    MJOIN_ASSIGN_OR_RETURN(int64_t width, ParseInt(type.substr(3)));
    if (width <= 0 || width > 1 << 20) {
      return Status::InvalidArgument("bad string width");
    }
    return Column::FixedString(name, static_cast<uint32_t>(width));
  }
  return Status::InvalidArgument(StrCat("bad column type '", type, "'"));
}

StatusOr<CompareOp> ParseCompare(const std::string& token) {
  static const std::map<std::string, CompareOp> kOps = {
      {"eq", CompareOp::kEq},   {"ne", CompareOp::kNe},
      {"lt", CompareOp::kLt},   {"le", CompareOp::kLe},
      {"gt", CompareOp::kGt},   {"ge", CompareOp::kGe},
      {"between", CompareOp::kBetween}};
  auto it = kOps.find(token);
  if (it == kOps.end()) {
    return Status::InvalidArgument(StrCat("bad compare op '", token, "'"));
  }
  return it->second;
}

StatusOr<XraOpKind> ParseKind(const std::string& token) {
  static const std::map<std::string, XraOpKind> kKinds = {
      {"scan", XraOpKind::kScan},
      {"rescan", XraOpKind::kRescan},
      {"simple-hash-join", XraOpKind::kSimpleHashJoin},
      {"pipelining-hash-join", XraOpKind::kPipeliningHashJoin},
      {"filter", XraOpKind::kFilter},
      {"aggregate", XraOpKind::kAggregate},
      {"sort-merge-join", XraOpKind::kSortMergeJoin}};
  auto it = kKinds.find(token);
  if (it == kKinds.end()) {
    return Status::InvalidArgument(StrCat("bad op kind '", token, "'"));
  }
  return it->second;
}

/// Cursor over a token list with typed accessors.
class TokenCursor {
 public:
  explicit TokenCursor(std::vector<std::string> tokens)
      : tokens_(std::move(tokens)) {}

  bool done() const { return next_ >= tokens_.size(); }

  StatusOr<std::string> Next() {
    if (done()) return Status::InvalidArgument("unexpected end of line");
    return tokens_[next_++];
  }

  Status Expect(const std::string& keyword) {
    MJOIN_ASSIGN_OR_RETURN(std::string token, Next());
    if (token != keyword) {
      return Status::InvalidArgument(
          StrCat("expected '", keyword, "', got '", token, "'"));
    }
    return Status::OK();
  }

  StatusOr<int64_t> NextInt() {
    MJOIN_ASSIGN_OR_RETURN(std::string token, Next());
    return ParseInt(token);
  }

  /// Peeks whether the next token equals `keyword` (consumes on match).
  bool Accept(const std::string& keyword) {
    if (done() || tokens_[next_] != keyword) return false;
    ++next_;
    return true;
  }

 private:
  std::vector<std::string> tokens_;
  size_t next_ = 0;
};

Status ParseInputSpec(TokenCursor* cursor, XraInput* input) {
  MJOIN_ASSIGN_OR_RETURN(int64_t producer, cursor->NextInt());
  MJOIN_ASSIGN_OR_RETURN(std::string routing, cursor->Next());
  input->producer = static_cast<int>(producer);
  if (routing == "colocated") {
    input->routing = Routing::kColocated;
  } else if (routing.rfind("split:", 0) == 0) {
    input->routing = Routing::kHashSplit;
    MJOIN_ASSIGN_OR_RETURN(int64_t key, ParseInt(routing.substr(6)));
    input->split_key = static_cast<size_t>(key);
  } else {
    return Status::InvalidArgument(StrCat("bad routing '", routing, "'"));
  }
  return Status::OK();
}

StatusOr<std::vector<JoinOutputColumn>> ParseOutputs(
    const std::string& token) {
  std::vector<JoinOutputColumn> outputs;
  for (const std::string& part : StrSplit(token, ',')) {
    if (part.size() < 2 || (part[0] != 'L' && part[0] != 'R')) {
      return Status::InvalidArgument(StrCat("bad output '", part, "'"));
    }
    MJOIN_ASSIGN_OR_RETURN(int64_t column, ParseInt(part.substr(1)));
    outputs.push_back(
        JoinOutputColumn{part[0] == 'L' ? 0 : 1,
                         static_cast<size_t>(column)});
  }
  return outputs;
}

}  // namespace

StatusOr<ParallelPlan> ParsePlan(const std::string& text) {
  std::vector<std::shared_ptr<const Schema>> schemas;
  ParallelPlan plan;
  bool saw_header = false;

  auto schema_at = [&](int64_t idx) -> StatusOr<std::shared_ptr<const Schema>> {
    if (idx < 0 || idx >= static_cast<int64_t>(schemas.size())) {
      return Status::InvalidArgument(StrCat("bad schema index ", idx));
    }
    return schemas[static_cast<size_t>(idx)];
  };

  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty() || line[0] == '#') continue;
    MJOIN_ASSIGN_OR_RETURN(std::vector<std::string> tokens, Tokenize(line));
    if (tokens.empty()) continue;
    TokenCursor cursor(std::move(tokens));
    MJOIN_ASSIGN_OR_RETURN(std::string head, cursor.Next());

    if (head == "mjoin-plan") {
      MJOIN_RETURN_IF_ERROR(cursor.Expect("v1"));
      saw_header = true;
    } else if (head == "strategy") {
      MJOIN_ASSIGN_OR_RETURN(plan.strategy, cursor.Next());
    } else if (head == "processors") {
      MJOIN_ASSIGN_OR_RETURN(int64_t p, cursor.NextInt());
      plan.num_processors = static_cast<uint32_t>(p);
    } else if (head == "results") {
      MJOIN_ASSIGN_OR_RETURN(int64_t n, cursor.NextInt());
      plan.num_results = static_cast<int>(n);
      MJOIN_RETURN_IF_ERROR(cursor.Expect("final"));
      MJOIN_ASSIGN_OR_RETURN(int64_t final_id, cursor.NextInt());
      plan.final_result = static_cast<int>(final_id);
    } else if (head == "schema") {
      MJOIN_ASSIGN_OR_RETURN(int64_t idx, cursor.NextInt());
      if (idx != static_cast<int64_t>(schemas.size())) {
        return Status::InvalidArgument("schemas must appear in order");
      }
      std::vector<Column> columns;
      while (!cursor.done()) {
        MJOIN_ASSIGN_OR_RETURN(std::string token, cursor.Next());
        MJOIN_ASSIGN_OR_RETURN(Column column, ParseColumn(token));
        columns.push_back(std::move(column));
      }
      schemas.push_back(std::make_shared<const Schema>(std::move(columns)));
    } else if (head == "group") {
      MJOIN_ASSIGN_OR_RETURN(int64_t idx, cursor.NextInt());
      if (idx != static_cast<int64_t>(plan.groups.size())) {
        return Status::InvalidArgument("groups must appear in order");
      }
      TriggerGroup group;
      while (cursor.Accept("dep")) {
        TriggerDep dep;
        MJOIN_ASSIGN_OR_RETURN(int64_t op_id, cursor.NextInt());
        dep.op = static_cast<int>(op_id);
        MJOIN_ASSIGN_OR_RETURN(std::string milestone, cursor.Next());
        if (milestone == "complete") {
          dep.milestone = Milestone::kComplete;
        } else if (milestone == "build-done") {
          dep.milestone = Milestone::kBuildDone;
        } else {
          return Status::InvalidArgument(
              StrCat("bad milestone '", milestone, "'"));
        }
        group.deps.push_back(dep);
      }
      plan.groups.push_back(std::move(group));
    } else if (head == "op") {
      XraOp op;
      MJOIN_ASSIGN_OR_RETURN(int64_t id, cursor.NextInt());
      op.id = static_cast<int>(id);
      MJOIN_ASSIGN_OR_RETURN(std::string kind, cursor.Next());
      MJOIN_ASSIGN_OR_RETURN(op.kind, ParseKind(kind));
      MJOIN_RETURN_IF_ERROR(cursor.Expect("group"));
      MJOIN_ASSIGN_OR_RETURN(int64_t group, cursor.NextInt());
      op.trigger_group = static_cast<int>(group);
      MJOIN_RETURN_IF_ERROR(cursor.Expect("label"));
      MJOIN_ASSIGN_OR_RETURN(op.label, cursor.Next());
      MJOIN_RETURN_IF_ERROR(cursor.Expect("trace"));
      MJOIN_ASSIGN_OR_RETURN(int64_t trace, cursor.NextInt());
      op.trace_label = static_cast<char>(trace);
      MJOIN_RETURN_IF_ERROR(cursor.Expect("procs"));
      MJOIN_ASSIGN_OR_RETURN(std::string procs, cursor.Next());
      for (const std::string& token : StrSplit(procs, ',')) {
        MJOIN_ASSIGN_OR_RETURN(int64_t p, ParseInt(token));
        op.processors.push_back(static_cast<uint32_t>(p));
      }
      MJOIN_RETURN_IF_ERROR(cursor.Expect("schema"));
      MJOIN_ASSIGN_OR_RETURN(int64_t out_schema, cursor.NextInt());
      MJOIN_ASSIGN_OR_RETURN(op.output_schema, schema_at(out_schema));

      switch (op.kind) {
        case XraOpKind::kScan: {
          MJOIN_RETURN_IF_ERROR(cursor.Expect("relation"));
          MJOIN_ASSIGN_OR_RETURN(op.relation, cursor.Next());
          break;
        }
        case XraOpKind::kRescan: {
          MJOIN_RETURN_IF_ERROR(cursor.Expect("result"));
          MJOIN_ASSIGN_OR_RETURN(int64_t result, cursor.NextInt());
          op.stored_result = static_cast<int>(result);
          break;
        }
        case XraOpKind::kSimpleHashJoin:
        case XraOpKind::kPipeliningHashJoin:
        case XraOpKind::kSortMergeJoin: {
          MJOIN_RETURN_IF_ERROR(cursor.Expect("left"));
          MJOIN_ASSIGN_OR_RETURN(int64_t left, cursor.NextInt());
          MJOIN_RETURN_IF_ERROR(cursor.Expect("right"));
          MJOIN_ASSIGN_OR_RETURN(int64_t right, cursor.NextInt());
          MJOIN_RETURN_IF_ERROR(cursor.Expect("lkey"));
          MJOIN_ASSIGN_OR_RETURN(int64_t lkey, cursor.NextInt());
          MJOIN_RETURN_IF_ERROR(cursor.Expect("rkey"));
          MJOIN_ASSIGN_OR_RETURN(int64_t rkey, cursor.NextInt());
          MJOIN_RETURN_IF_ERROR(cursor.Expect("outputs"));
          MJOIN_ASSIGN_OR_RETURN(std::string outputs, cursor.Next());
          MJOIN_ASSIGN_OR_RETURN(std::vector<JoinOutputColumn> output_cols,
                                 ParseOutputs(outputs));
          MJOIN_ASSIGN_OR_RETURN(auto left_schema, schema_at(left));
          MJOIN_ASSIGN_OR_RETURN(auto right_schema, schema_at(right));
          MJOIN_ASSIGN_OR_RETURN(
              op.join_spec,
              MakeJoinSpec(left_schema, right_schema,
                           static_cast<size_t>(lkey),
                           static_cast<size_t>(rkey), output_cols));
          MJOIN_RETURN_IF_ERROR(cursor.Expect("in0"));
          MJOIN_RETURN_IF_ERROR(ParseInputSpec(&cursor, &op.inputs[0]));
          MJOIN_RETURN_IF_ERROR(cursor.Expect("in1"));
          MJOIN_RETURN_IF_ERROR(ParseInputSpec(&cursor, &op.inputs[1]));
          break;
        }
        case XraOpKind::kFilter: {
          MJOIN_RETURN_IF_ERROR(cursor.Expect("input"));
          MJOIN_ASSIGN_OR_RETURN(int64_t input, cursor.NextInt());
          MJOIN_ASSIGN_OR_RETURN(op.input_schema, schema_at(input));
          MJOIN_RETURN_IF_ERROR(cursor.Expect("col"));
          MJOIN_ASSIGN_OR_RETURN(int64_t col, cursor.NextInt());
          op.filter.column = static_cast<size_t>(col);
          MJOIN_RETURN_IF_ERROR(cursor.Expect("cmp"));
          MJOIN_ASSIGN_OR_RETURN(std::string cmp, cursor.Next());
          MJOIN_ASSIGN_OR_RETURN(op.filter.op, ParseCompare(cmp));
          MJOIN_RETURN_IF_ERROR(cursor.Expect("value"));
          MJOIN_ASSIGN_OR_RETURN(int64_t value, cursor.NextInt());
          op.filter.value = static_cast<int32_t>(value);
          MJOIN_RETURN_IF_ERROR(cursor.Expect("value2"));
          MJOIN_ASSIGN_OR_RETURN(int64_t value2, cursor.NextInt());
          op.filter.value2 = static_cast<int32_t>(value2);
          MJOIN_RETURN_IF_ERROR(cursor.Expect("in0"));
          MJOIN_RETURN_IF_ERROR(ParseInputSpec(&cursor, &op.inputs[0]));
          break;
        }
        case XraOpKind::kAggregate: {
          MJOIN_RETURN_IF_ERROR(cursor.Expect("input"));
          MJOIN_ASSIGN_OR_RETURN(int64_t input, cursor.NextInt());
          MJOIN_ASSIGN_OR_RETURN(op.input_schema, schema_at(input));
          MJOIN_RETURN_IF_ERROR(cursor.Expect("groupcol"));
          MJOIN_ASSIGN_OR_RETURN(int64_t group_col, cursor.NextInt());
          op.group_column = static_cast<size_t>(group_col);
          MJOIN_RETURN_IF_ERROR(cursor.Expect("valuecol"));
          MJOIN_ASSIGN_OR_RETURN(int64_t value_col, cursor.NextInt());
          op.value_column = static_cast<size_t>(value_col);
          MJOIN_RETURN_IF_ERROR(cursor.Expect("in0"));
          MJOIN_RETURN_IF_ERROR(ParseInputSpec(&cursor, &op.inputs[0]));
          break;
        }
      }

      MJOIN_ASSIGN_OR_RETURN(std::string dest, cursor.Next());
      if (dest == "store") {
        MJOIN_ASSIGN_OR_RETURN(int64_t result, cursor.NextInt());
        op.store_result = static_cast<int>(result);
      } else if (dest == "feed") {
        MJOIN_ASSIGN_OR_RETURN(int64_t consumer, cursor.NextInt());
        MJOIN_ASSIGN_OR_RETURN(int64_t port, cursor.NextInt());
        op.consumer = static_cast<int>(consumer);
        op.consumer_port = static_cast<int>(port);
      } else {
        return Status::InvalidArgument(
            StrCat("bad destination '", dest, "'"));
      }
      if (op.id != static_cast<int>(plan.ops.size())) {
        return Status::InvalidArgument("ops must appear in id order");
      }
      plan.ops.push_back(std::move(op));
      // Register in its group.
      if (plan.ops.back().trigger_group < 0 ||
          plan.ops.back().trigger_group >=
              static_cast<int>(plan.groups.size())) {
        return Status::InvalidArgument("op references unknown group");
      }
      plan.groups[static_cast<size_t>(plan.ops.back().trigger_group)]
          .ops.push_back(plan.ops.back().id);
    } else {
      return Status::InvalidArgument(StrCat("bad record '", head, "'"));
    }
  }

  if (!saw_header) return Status::InvalidArgument("missing mjoin-plan header");
  MJOIN_RETURN_IF_ERROR(plan.Validate());
  return plan;
}

}  // namespace mjoin
