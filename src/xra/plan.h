#ifndef MJOIN_XRA_PLAN_H_
#define MJOIN_XRA_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "exec/filter.h"
#include "exec/join_spec.h"
#include "storage/schema.h"

namespace mjoin {

/// Physical operator kinds of the parallel plan language (the XRA-like
/// internal representation: each operation runs with an arbitrary degree
/// of intra-operator parallelism on an explicit list of processors, and
/// results are split over an arbitrary number of destinations).
enum class XraOpKind {
  /// Reads the node-local fragment of a base relation. Base relations are
  /// declustered over the scan's processors on the consumer's join key
  /// ("ideal initial fragmentation", §4.1), so scans are colocated with
  /// their consumer and need no redistribution.
  kScan,
  /// Reads the node-local fragments of a stored intermediate result and
  /// redistributes them to the consumer (an n x m refragmentation).
  kRescan,
  /// Two-phase build/probe hash-join (port 0 = build, port 1 = probe).
  kSimpleHashJoin,
  /// Symmetric pipelining hash-join (output produced as tuples arrive).
  kPipeliningHashJoin,
  /// Selection over one input stream (output schema = input schema).
  kFilter,
  /// Hash group-by aggregation (COUNT/SUM/MIN/MAX) over one input stream,
  /// hash-split on the grouping column so instances own disjoint groups.
  kAggregate,
  /// Sort-merge equi-join (port 0 = left, port 1 = right): the [SCD89]
  /// baseline algorithm; a pipeline breaker on both inputs.
  kSortMergeJoin,
};

std::string XraOpKindName(XraOpKind kind);

/// Events an operation process reports to the scheduler; trigger groups
/// can depend on them.
enum class Milestone {
  /// The operator consumed all input and emitted all output.
  kComplete,
  /// A simple hash-join finished building its hash table (its probe
  /// source may now be started).
  kBuildDone,
};

std::string MilestoneName(Milestone milestone);

/// How a producer's output reaches a consumer's instances.
enum class Routing {
  /// Producer instance i feeds consumer instance i on the same processor:
  /// no streams, no handshake, no send/receive cost (local memory).
  kColocated,
  /// Hash-split on `split_key`: producer instance feeds all m consumer
  /// instances; n producers x m consumers networked tuple streams.
  kHashSplit,
};

/// One input port of an operation.
struct XraInput {
  int producer = -1;  // op id; -1 = unused port
  Routing routing = Routing::kHashSplit;
  /// Column (in the producer's output schema) whose hash selects the
  /// destination instance; ignored for kColocated.
  size_t split_key = 0;
};

/// One (logical) operation, executed by one operation process per entry of
/// `processors`.
struct XraOp {
  int id = -1;
  XraOpKind kind = XraOpKind::kScan;
  /// Human-readable label ("join#7(SE)"), and the single character used in
  /// utilization diagrams.
  std::string label;
  char trace_label = '?';
  std::vector<uint32_t> processors;
  int trigger_group = -1;

  /// kScan: base relation name.
  std::string relation;
  /// kRescan: id of the stored result to read.
  int stored_result = -1;
  /// Joins: full join semantics.
  JoinSpec join_spec;
  /// kFilter: the predicate.
  FilterPredicate filter;
  /// kAggregate: grouping and value columns (in the input schema).
  size_t group_column = 0;
  size_t value_column = 0;
  /// Single-input ops (kFilter, kAggregate): their declared input schema.
  std::shared_ptr<const Schema> input_schema;
  /// Input ports: joins use [0]=build/left and [1]=probe/right; filter and
  /// aggregate use [0]; kRescan/kScan have none.
  XraInput inputs[2];

  /// Output destination: exactly one of the following.
  /// If >= 0, each instance stores its output rows locally under this
  /// result id (consumed later by a kRescan, or the query result).
  int store_result = -1;
  /// Otherwise the op with this id consumes our output on `consumer_port`.
  int consumer = -1;
  int consumer_port = 0;

  std::shared_ptr<const Schema> output_schema;

  bool is_source() const {
    return kind == XraOpKind::kScan || kind == XraOpKind::kRescan;
  }
  bool is_join() const {
    return kind == XraOpKind::kSimpleHashJoin ||
           kind == XraOpKind::kPipeliningHashJoin ||
           kind == XraOpKind::kSortMergeJoin;
  }
  /// Number of input ports (0 sources, 1 filter/aggregate, 2 joins).
  int num_inputs() const {
    if (is_source()) return 0;
    return is_join() ? 2 : 1;
  }
};

/// A dependency of a trigger group: `milestone` of op `op`.
struct TriggerDep {
  int op = -1;
  Milestone milestone = Milestone::kComplete;
};

/// Operations started together once all deps have fired. Group 0 must
/// have no deps (it starts the query).
struct TriggerGroup {
  std::vector<TriggerDep> deps;
  std::vector<int> ops;
};

/// A complete parallel execution plan for a multi-join query, produced by
/// one of the four strategies and executed by the simulated or threaded
/// backend.
struct ParallelPlan {
  std::string strategy;
  uint32_t num_processors = 0;
  std::vector<XraOp> ops;
  std::vector<TriggerGroup> groups;
  /// Stored-result id holding the final query result (the root join's
  /// output), distributed over the root join's processors.
  int final_result = -1;
  /// Total number of stored-result ids used (result registry size).
  int num_results = 0;

  /// Structural validation: port wiring, schema agreement, processor
  /// lists, trigger groups (each op in exactly one, deps reference earlier
  /// milestones), colocation constraints, and the paper's rule that no
  /// processor runs two *join* operations of the same trigger epoch.
  Status Validate() const;

  /// Counts the networked tuple streams implied by the plan
  /// (sum over kHashSplit edges of n_producer_instances * m_consumer).
  uint64_t CountStreams() const;

  /// Total operation processes (sum of instances over ops).
  uint64_t CountProcesses() const;

  /// Multi-line EXPLAIN-style rendering.
  std::string ToString() const;
};

}  // namespace mjoin

#endif  // MJOIN_XRA_PLAN_H_
