#include "check/ring_harness.h"

#include <cstring>
#include <utility>

#include "check/model_runtime.h"
#include "net/shm_ring.h"

namespace mjoin {
namespace check {
namespace {

// A 64-byte data region (max_payload 16) keeps every interesting wrap and
// full-ring state reachable in a handful of records. Init() deliberately
// does not enforce the 4 KiB production minimum, so tiny rings are legal
// here.
constexpr uint32_t kRingBytes = 64;
constexpr size_t kBlockBytes = sizeof(ShmRingHdr) + kRingBytes;

ModelRuntime& RT() { return ModelRuntime::Get(); }

/// One model ring: backing storage + the production ShmRing view over it.
struct RingBox {
  alignas(64) std::byte mem[kBlockBytes];
  ShmRing ring;

  ShmRingHdr* hdr() { return reinterpret_cast<ShmRingHdr*>(mem); }

  /// Re-establishes a pristine ring with both cursors at `base_cursor`.
  /// Resets the whole runtime, so direct scenarios call it once per
  /// phase; Explore setups call it once per execution.
  void Prepare(uint64_t base_cursor) {
    RT().Reset();
    std::memset(mem, 0, sizeof(mem));
    RT().RegisterRegion(mem, sizeof(mem));
    ring = ShmRing();
    ring.Init(mem, kRingBytes);
    if (base_cursor != 0) {
      // Seed the free-running cursors (registered below, so the
      // monotonicity check does not see this jump from zero).
      hdr()->tail.store(base_cursor, std::memory_order_relaxed);
      hdr()->head.store(base_cursor, std::memory_order_relaxed);
    }
    RT().RegisterCursor(&hdr()->tail, "tail", kRingBytes);
    RT().RegisterCursor(&hdr()->head, "head", kRingBytes);
  }
};

uint8_t PatternByte(uint8_t seed, size_t i) {
  return static_cast<uint8_t>(seed * 31 + i * 7 + 13);
}

/// Pushes one kData record whose payload is the deterministic pattern for
/// `seed`; returns TryPush's verdict.
bool PushPattern(ShmRing* ring, uint32_t payload_bytes, uint8_t seed) {
  std::byte buf[32] = {};
  for (size_t i = 0; i < payload_bytes; ++i) {
    buf[i] = static_cast<std::byte>(PatternByte(seed, i));
  }
  return ring->TryPush(ShmRecordType::kData, buf, payload_bytes, nullptr, 0);
}

/// Reads the next record (skipping pads); violations on corrupt ring.
/// Returns false when drained.
bool ReadNext(ShmRing* ring, ShmRecordView* view) {
  StatusOr<bool> got = ring->TryRead(view);
  if (!got.ok()) RT().Violation("consumer: " + got.status().message());
  return got.value();
}

void VerifyPayload(const ShmRecordView& view, uint32_t payload_bytes,
                   uint8_t seed) {
  if (view.type != ShmRecordType::kData) {
    RT().Violation("record type mismatch: " +
                   std::string(ShmRecordTypeName(view.type)));
  }
  if (view.payload_bytes != payload_bytes) {
    RT().Violation("payload size mismatch: got " +
                   std::to_string(view.payload_bytes) + " want " +
                   std::to_string(payload_bytes));
  }
  std::byte buf[32] = {};
  RT().ReadPayload(buf, view.payload, payload_bytes);
  for (size_t i = 0; i < payload_bytes; ++i) {
    if (buf[i] != static_cast<std::byte>(PatternByte(seed, i))) {
      RT().Violation("torn payload at byte " + std::to_string(i));
    }
  }
}

struct Expected {
  uint32_t payload_bytes;
  uint8_t seed;
};

/// Drains the ring, validating the exact surviving record sequence, then
/// asserts the §14 accounting invariant: a drained ring has returned
/// every byte, pads included (head == tail).
void DrainAndVerify(ShmRing* ring, const std::vector<Expected>& expected) {
  size_t got = 0;
  ShmRecordView view;
  while (ReadNext(ring, &view)) {
    if (got >= expected.size()) {
      RT().Violation("drained more records than were published");
    }
    VerifyPayload(view, expected[got].payload_bytes, expected[got].seed);
    ring->Release();
    ++got;
  }
  if (got != expected.size()) {
    RT().Violation("drained " + std::to_string(got) + " records, expected " +
                   std::to_string(expected.size()));
  }
  if (ring->head_cursor() != ring->tail_cursor()) {
    RT().Violation("drained ring did not return all space: head " +
                   std::to_string(ring->head_cursor()) + " != tail " +
                   std::to_string(ring->tail_cursor()));
  }
}

void MustPush(ShmRing* ring, uint32_t payload_bytes, uint8_t seed) {
  if (!PushPattern(ring, payload_bytes, seed)) {
    RT().Violation("push refused with space available");
  }
}

// ---------------------------------------------------------------------
// Direct scenarios (single-threaded, deterministic).
// ---------------------------------------------------------------------

/// Wrap behaviour: a record that would straddle the region end forces a
/// pad; a pad that would trample unreleased records is refused; both
/// recover once the consumer drains.
void ScenarioWrapPad() {
  RingBox box;

  // Phase A: straddle. Fill to offset 48, drain, then push a maximal
  // record whose 24 bytes cannot fit the 16 bytes left before the end.
  box.Prepare(0);
  MustPush(&box.ring, 8, 1);
  MustPush(&box.ring, 8, 2);
  MustPush(&box.ring, 8, 3);
  DrainAndVerify(&box.ring, {{8, 1}, {8, 2}, {8, 3}});
  // kStraddleRecord skips the pad here and copies 16 payload bytes
  // through the end of the data region: caught as an out-of-region write.
  MustPush(&box.ring, 16, 4);
  DrainAndVerify(&box.ring, {{16, 4}});

  // Phase B: pad refusal. Build a second-lap state where the tail is 16
  // bytes short of the end but the consumer still owns part of the
  // previous lap (avail 8 < to_end 16), then ask for a wrapping record.
  box.Prepare(0);
  MustPush(&box.ring, 16, 5);  // [0,24)
  MustPush(&box.ring, 16, 6);  // [24,48)
  MustPush(&box.ring, 0, 7);   // [48,56)
  DrainAndVerify(&box.ring, {{16, 5}, {16, 6}, {0, 7}});
  MustPush(&box.ring, 8, 8);   // pad [56,64), then [0,16)
  MustPush(&box.ring, 16, 9);  // [16,40)
  MustPush(&box.ring, 8, 10);  // [40,56): tail off 48, head off 56
  // kPadOverwrite publishes the pad anyway, trampling the unconsumed pad
  // at [56,64) and driving tail-head past the ring size: the drain below
  // reports corrupt cursors.
  const bool pushed = PushPattern(&box.ring, 16, 11);
  DrainAndVerify(&box.ring, {{8, 8}, {16, 9}, {8, 10}});
  if (pushed) {
    RT().Violation("push succeeded though its pad would trample "
                   "unreleased records");
  }
  // Recovery: the refused push goes through verbatim once drained.
  MustPush(&box.ring, 16, 11);
  DrainAndVerify(&box.ring, {{16, 11}});
}

/// Full-ring accounting: capacity is exactly data_bytes, a full ring
/// refuses, a drained ring has head == tail even when the last thing
/// consumed was a pad, and the refused push succeeds after draining.
void ScenarioAccounting() {
  RingBox box;

  // Phase A: capacity. Eight 8-byte records fill the 64-byte region
  // exactly; the ninth must be refused. kOverclaimAvail admits it (and
  // everything after — avail underflows), corrupting the cursors.
  box.Prepare(0);
  int pushed = 0;
  std::vector<Expected> all;
  while (pushed < 12 && PushPattern(&box.ring, 0, static_cast<uint8_t>(pushed))) {
    all.push_back({0, static_cast<uint8_t>(pushed)});
    ++pushed;
  }
  DrainAndVerify(&box.ring, all);
  if (pushed != 8) {
    RT().Violation("a 64-byte ring accepted " + std::to_string(pushed) +
                   " 8-byte records, expected exactly 8");
  }

  // Phase B: pad space must return to the producer. Leave the consumer
  // mid-ring, force a pad-then-refuse (avail 16 < rec 24), then drain:
  // the skipped pad must move head all the way to tail.
  // kPadSkipNoRelease leaves head 16 bytes short.
  box.Prepare(0);
  MustPush(&box.ring, 8, 20);   // [0,16)
  MustPush(&box.ring, 16, 21);  // [16,40)
  MustPush(&box.ring, 0, 22);   // [40,48)
  ShmRecordView view;
  if (!ReadNext(&box.ring, &view)) RT().Violation("ring empty after pushes");
  VerifyPayload(view, 8, 20);
  box.ring.Release();  // head 16
  const bool mid_pushed = PushPattern(&box.ring, 16, 23);  // pad [48,64), refuse
  DrainAndVerify(&box.ring, {{16, 21}, {0, 22}});
  if (mid_pushed) {
    RT().Violation("push succeeded with only 16 of 24 bytes free");
  }
  // Recovery proves the refusal was full-ring back-pressure, not a wedge.
  MustPush(&box.ring, 16, 23);
  DrainAndVerify(&box.ring, {{16, 23}});
}

/// Cursor numeric wrap: both cursors seeded 24 bytes below 2^64; pushes
/// and reads must cross the wrap with the modular arithmetic intact.
/// kWrapUnsafeCompare's `head + rec > tail` misfires on the first read.
void ScenarioNearWrap() {
  RingBox box;
  box.Prepare(~uint64_t{0} - 23);  // 2^64 - 24, 8-byte aligned, offset 40
  MustPush(&box.ring, 8, 30);  // [40,56)
  MustPush(&box.ring, 8, 31);  // pad [56,64), tail crosses 2^64, [0,16)
  MustPush(&box.ring, 8, 32);  // [16,32)
  DrainAndVerify(&box.ring, {{8, 30}, {8, 31}, {8, 32}});
  if (box.ring.tail_cursor() != 32) {
    RT().Violation("tail did not wrap cleanly across 2^64");
  }
}

// ---------------------------------------------------------------------
// Interleaved scenarios.
// ---------------------------------------------------------------------

constexpr int kBell = 0;

/// One record, producer vs doorbell-paced consumer. Store-buffer
/// reordering and stale reads make the publish protocol's release/acquire
/// pairing load-bearing here: kCommitTailRelaxed, kPublishBeforeWrite and
/// kReadTailRelaxed all surface as a garbage header, a torn payload, or a
/// stranded consumer.
ExploreSpec SpecRacePublish(RingBox* box) {
  ExploreSpec spec;
  spec.setup = [box] { box->Prepare(0); };
  spec.threads.push_back({"prod", [box] {
    if (!PushPattern(&box->ring, 4, 40)) {
      RT().Violation("push refused on an empty ring");
    }
    RT().DoorbellRing(kBell);
  }});
  spec.threads.push_back({"cons", [box] {
    for (;;) {
      ShmRecordView view;
      if (ReadNext(&box->ring, &view)) {
        VerifyPayload(view, 4, 40);
        box->ring.Release();
        return;
      }
      RT().DoorbellWait(kBell);
    }
  }});
  spec.final_check = [box] {
    if (box->ring.head_cursor() != box->ring.tail_cursor()) {
      RT().Violation("record space not returned after consume");
    }
  };
  return spec;
}

/// Two records, one doorbell ring per publish. The §14 no-lost-wakeup
/// invariant: no interleaving may leave the consumer parked while a
/// published record sits unread. kDoorbellDropped elides the second ring.
ExploreSpec SpecDoorbell(RingBox* box) {
  ExploreSpec spec;
  spec.setup = [box] { box->Prepare(0); };
  spec.threads.push_back({"prod", [box] {
    for (uint8_t i = 0; i < 2; ++i) {
      if (!PushPattern(&box->ring, 4, static_cast<uint8_t>(50 + i))) {
        RT().Violation("push refused with space available");
      }
      if (i == 0 || !MutationEnabled(Mutation::kDoorbellDropped)) {
        RT().DoorbellRing(kBell);
      }
    }
  }});
  spec.threads.push_back({"cons", [box] {
    int got = 0;
    while (got < 2) {
      ShmRecordView view;
      if (ReadNext(&box->ring, &view)) {
        VerifyPayload(view, 4, static_cast<uint8_t>(50 + got));
        box->ring.Release();
        ++got;
        continue;
      }
      RT().DoorbellWait(kBell);
    }
  }});
  spec.final_check = [box] {
    if (box->ring.head_cursor() != box->ring.tail_cursor()) {
      RT().Violation("record space not returned after consume");
    }
  };
  return spec;
}

/// Producer killed between any two instructions (SIGKILL model: buffered
/// stores may still land, no further instruction runs). The consumer must
/// observe an intact prefix of the published records — a half-written
/// record must be unpublishable.
ExploreSpec SpecCrashPublish(RingBox* box) {
  ExploreSpec spec;
  spec.setup = [box] { box->Prepare(0); };
  spec.crash_thread = 0;
  spec.threads.push_back({"prod", [box] {
    for (uint8_t i = 0; i < 3; ++i) {
      if (!PushPattern(&box->ring, 8, static_cast<uint8_t>(60 + i))) {
        RT().Violation("push refused with space available");
      }
      RT().DoorbellRing(kBell);
    }
  }});
  spec.threads.push_back({"cons", [box] {
    int got = 0;
    while (got < 3) {
      ShmRecordView view;
      if (ReadNext(&box->ring, &view)) {
        VerifyPayload(view, 8, static_cast<uint8_t>(60 + got));
        box->ring.Release();
        ++got;
        continue;
      }
      // Drained. A dead producer publishes nothing further; a live one
      // will ring again.
      if (RT().CrashHappened()) return;
      RT().DoorbellWait(kBell);
    }
  }});
  return spec;
}

}  // namespace

std::vector<std::string> ScenarioNames() {
  return {"wrap_pad", "accounting", "near_wrap",
          "race_publish", "doorbell", "crash_publish"};
}

const char* CatchingScenario(Mutation m) {
  switch (m) {
    case Mutation::kCommitTailRelaxed:
    case Mutation::kPublishBeforeWrite:
    case Mutation::kReadTailRelaxed:
      return "race_publish";
    case Mutation::kStraddleRecord:
    case Mutation::kPadOverwrite:
      return "wrap_pad";
    case Mutation::kOverclaimAvail:
    case Mutation::kPadSkipNoRelease:
      return "accounting";
    case Mutation::kWrapUnsafeCompare:
      return "near_wrap";
    case Mutation::kDoorbellDropped:
      return "doorbell";
    case Mutation::kNone:
      break;
  }
  return "";
}

ScenarioResult RunScenario(const std::string& name, Mutation mutation,
                           uint64_t max_schedules, uint64_t seed) {
  ScenarioResult result;
  result.name = name;
  SetMutation(mutation);
  ModelRuntime& rt = RT();

  void (*direct)() = nullptr;
  if (name == "wrap_pad") direct = &ScenarioWrapPad;
  if (name == "accounting") direct = &ScenarioAccounting;
  if (name == "near_wrap") direct = &ScenarioNearWrap;
  if (direct != nullptr) {
    try {
      direct();
    } catch (const ModelAbort&) {
    }
    result.executions = 1;
    result.exhausted = true;
    result.violated = rt.violated();
    result.message = rt.violation_message();
    result.trace = rt.trace();
    SetMutation(Mutation::kNone);
    return result;
  }

  RingBox box;
  ExploreSpec spec;
  if (name == "race_publish") {
    spec = SpecRacePublish(&box);
  } else if (name == "doorbell") {
    spec = SpecDoorbell(&box);
  } else if (name == "crash_publish") {
    spec = SpecCrashPublish(&box);
  } else {
    SetMutation(Mutation::kNone);
    result.violated = true;
    result.message = "unknown scenario: " + name;
    return result;
  }
  const ExploreResult explored =
      rt.Explore(spec, max_schedules, /*stop_at_first_violation=*/true, seed);
  result.executions = explored.executions;
  result.exhausted = explored.exhausted;
  result.violated = explored.violations > 0;
  result.message = explored.first_violation;
  result.trace = explored.first_trace;
  SetMutation(Mutation::kNone);
  return result;
}

}  // namespace check
}  // namespace mjoin
