#include "check/model_runtime.h"

#include <algorithm>
#include <cstring>

namespace mjoin {
namespace check {
namespace {

// Identifies the calling scenario thread inside runtime ops; -1 is the
// scheduler / direct-mode caller.
thread_local int t_self = -1;

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E37'79B9'7F4A'7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58'476D'1CE4'E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D0'49BB'1331'11EBull;
  return z ^ (z >> 31);
}

bool Overlaps(const void* a, size_t an, const void* b, size_t bn) {
  auto lo_a = reinterpret_cast<uintptr_t>(a);
  auto lo_b = reinterpret_cast<uintptr_t>(b);
  return lo_a < lo_b + bn && lo_b < lo_a + an;
}

}  // namespace

ModelRuntime& ModelRuntime::Get() {
  // lint:allow-new intentionally leaked process-lifetime singleton
  static ModelRuntime* runtime = new ModelRuntime();
  return *runtime;
}

void ModelRuntime::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  concurrent_ = false;
  abort_ = false;
  granted_ = -1;
  threads_.clear();
  locations_.clear();
  epoch_ = 0;
  region_base_ = nullptr;
  region_bytes_ = 0;
  cursors_.clear();
  doorbells_.clear();
  crash_happened_ = false;
  violated_ = false;
  violation_message_.clear();
  trace_.clear();
}

void ModelRuntime::RegisterRegion(void* base, size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  region_base_ = static_cast<std::byte*>(base);
  region_bytes_ = bytes;
}

void ModelRuntime::RegisterCursor(void* addr, const char* name,
                                  uint64_t max_step) {
  std::lock_guard<std::mutex> lock(mu_);
  cursors_[addr] = CursorInfo{name, max_step};
}

std::string ModelRuntime::Addr(const void* addr) const {
  const auto* p = static_cast<const std::byte*>(addr);
  if (region_base_ != nullptr && p >= region_base_ &&
      p < region_base_ + region_bytes_) {
    return "ring+" + std::to_string(p - region_base_);
  }
  return "<outside>";
}

void ModelRuntime::RecordStep(std::string what) {
  std::string who =
      t_self >= 0 && t_self < static_cast<int>(threads_.size())
          ? threads_[t_self].name
          : (concurrent_ ? std::string("sched") : std::string("main"));
  trace_.push_back(who + ": " + std::move(what));
}

void ModelRuntime::ViolationLocked(const std::string& message) {
  if (!violated_) {
    violated_ = true;
    violation_message_ = message;
  }
  trace_.push_back("VIOLATION: " + message);
  abort_ = true;
  cv_.notify_all();
  throw ModelAbort{};
}

void ModelRuntime::Violation(const std::string& message) {
  std::lock_guard<std::mutex> lock(mu_);
  ViolationLocked(message);
}

void ModelRuntime::CheckBounds(const void* addr, size_t n, const char* what) {
  const auto* p = static_cast<const std::byte*>(addr);
  if (region_base_ == nullptr || p < region_base_ ||
      p + n > region_base_ + region_bytes_) {
    ViolationLocked(std::string(what) + " of " + std::to_string(n) +
                    " bytes outside the shared region (offset " +
                    std::to_string(p - region_base_) + ")");
  }
}

uint64_t ModelRuntime::ReadFresh(const void* addr, uint8_t size) const {
  uint64_t v = 0;
  std::memcpy(&v, addr, size);
  return v;
}

uint64_t ModelRuntime::ReadModel(const void* addr, uint8_t size) {
  auto it = locations_.find(addr);
  if (it == locations_.end()) return ReadFresh(addr, size);
  const Location& loc = it->second;
  const uint64_t acquired = t_self >= 0 ? threads_[t_self].acquired : epoch_;
  if (loc.stamp > acquired && loc.writer != t_self) {
    // The write is not ordered before anything this thread has acquired:
    // an unsynchronized CPU may legally serve the previous value.
    return loc.prev;
  }
  return ReadFresh(addr, size);
}

uint64_t ModelRuntime::Forwarded(const void* addr, uint8_t size, bool* hit) {
  *hit = false;
  if (t_self < 0) return 0;
  const auto& buffer = threads_[t_self].buffer;
  for (auto it = buffer.rbegin(); it != buffer.rend(); ++it) {
    if (it->addr == addr && it->size == size) {
      *hit = true;
      return it->value;
    }
  }
  return 0;
}

void ModelRuntime::ApplyWrite(void* addr, uint8_t size, uint64_t value,
                              int writer) {
  CheckBounds(addr, size, "write");
  auto cur = cursors_.find(addr);
  if (cur != cursors_.end()) {
    const uint64_t old = ReadFresh(addr, size);
    // Wrap-safe monotonicity: the modular forward step must be small.
    if (value - old > cur->second.max_step) {
      ViolationLocked("cursor " + cur->second.name +
                      " moved backwards or overjumped: " +
                      std::to_string(old) + " -> " + std::to_string(value));
    }
  }
  Location& loc = locations_[addr];
  loc.prev = ReadFresh(addr, size);
  loc.stamp = ++epoch_;
  loc.writer = writer;
  std::memcpy(addr, &value, size);
}

void ModelRuntime::FlushEntry(int thread, size_t index) {
  auto& buffer = threads_[thread].buffer;
  StoreEntry entry = buffer[index];
  buffer.erase(buffer.begin() + static_cast<ptrdiff_t>(index));
  RecordStep("flush " + entry.what + " " + Addr(entry.addr) + " = " +
             std::to_string(entry.value) + " [" + threads_[thread].name + "]");
  ApplyWrite(entry.addr, entry.size, entry.value, thread);
}

void ModelRuntime::ParkAndAwaitGrant(std::unique_lock<std::mutex>& lock) {
  ThreadCtx& t = threads_[t_self];
  t.state = ThreadState::kParked;
  cv_.notify_all();
  cv_.wait(lock, [&] { return granted_ == t_self || abort_ || t.killed; });
  if (abort_ || t.killed) throw ModelAbort{};
  granted_ = -1;
  t.state = ThreadState::kRunning;
}

void ModelRuntime::StoreWord(uint32_t* addr, uint32_t v) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!concurrent_) {
    CheckBounds(addr, 4, "store32");
    RecordStep("store32 " + Addr(addr) + " = " + std::to_string(v));
    *addr = v;
    return;
  }
  ParkAndAwaitGrant(lock);
  CheckBounds(addr, 4, "store32");
  RecordStep("buffer store32 " + Addr(addr) + " = " + std::to_string(v));
  threads_[t_self].buffer.push_back(StoreEntry{addr, 4, v, "store32"});
}

uint32_t ModelRuntime::LoadWord(const uint32_t* addr) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!concurrent_) {
    CheckBounds(addr, 4, "load32");
    return *addr;
  }
  ParkAndAwaitGrant(lock);
  CheckBounds(addr, 4, "load32");
  bool hit = false;
  uint64_t v = Forwarded(addr, 4, &hit);
  if (!hit) v = ReadModel(addr, 4);
  RecordStep("load32 " + Addr(addr) + " -> " + std::to_string(v));
  return static_cast<uint32_t>(v);
}

void ModelRuntime::CopyIn(void* dst, const void* src, size_t n) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!concurrent_) {
    CheckBounds(dst, n, "copy");
    RecordStep("copy " + std::to_string(n) + "B -> " + Addr(dst));
    std::memcpy(dst, src, n);
    return;
  }
  // One schedule point covering the whole memcpy; the copy lands in the
  // store buffer as word entries so individual words flush independently.
  ParkAndAwaitGrant(lock);
  CheckBounds(dst, n, "copy");
  RecordStep("buffer copy " + std::to_string(n) + "B -> " + Addr(dst));
  auto* d = static_cast<std::byte*>(dst);
  const auto* s = static_cast<const std::byte*>(src);
  for (size_t off = 0; off < n; off += 4) {
    const uint8_t size = static_cast<uint8_t>(std::min<size_t>(4, n - off));
    uint64_t v = 0;
    std::memcpy(&v, s + off, size);
    threads_[t_self].buffer.push_back(StoreEntry{d + off, size, v, "copyw"});
  }
}

void ModelRuntime::AtomicStore64(uint64_t* addr, uint64_t v,
                                 std::memory_order order) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!concurrent_) {
    RecordStep("store64 " + Addr(addr) + " = " + std::to_string(v));
    ApplyWrite(addr, 8, v, t_self);
    return;
  }
  ParkAndAwaitGrant(lock);
  if (order == std::memory_order_release ||
      order == std::memory_order_seq_cst ||
      order == std::memory_order_acq_rel) {
    // Release semantics: everything this thread buffered becomes visible
    // no later than the cursor itself — drain the buffer in program
    // order, then write, all as one indivisible step.
    RecordStep("release-store64 " + Addr(addr) + " = " + std::to_string(v));
    auto& buffer = threads_[t_self].buffer;
    while (!buffer.empty()) FlushEntry(t_self, 0);
    ApplyWrite(addr, 8, v, t_self);
    return;
  }
  // Relaxed: the cursor store is just another buffered write, free to
  // overtake the record bytes — exactly the reordering a relaxed publish
  // permits.
  RecordStep("buffer relaxed-store64 " + Addr(addr) + " = " +
             std::to_string(v));
  threads_[t_self].buffer.push_back(StoreEntry{addr, 8, v, "store64"});
}

uint64_t ModelRuntime::AtomicLoad64(const uint64_t* addr,
                                    std::memory_order order) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!concurrent_) return ReadFresh(addr, 8);
  ParkAndAwaitGrant(lock);
  bool hit = false;
  uint64_t v = Forwarded(addr, 8, &hit);
  if (!hit) {
    v = ReadFresh(addr, 8);
    if (order == std::memory_order_acquire ||
        order == std::memory_order_seq_cst ||
        order == std::memory_order_acq_rel) {
      // Acquire adopts the writer's history: every write stamped at or
      // before this location's last write is now fresh for this thread.
      auto it = locations_.find(addr);
      if (it != locations_.end()) {
        threads_[t_self].acquired =
            std::max(threads_[t_self].acquired, it->second.stamp);
      }
    }
    // A relaxed load may return the current value but acquires nothing:
    // the record bytes "published" by the cursor stay stale to us.
  }
  RecordStep("load64 " + Addr(addr) + " -> " + std::to_string(v));
  return v;
}

void ModelRuntime::ReadPayload(void* dst, const void* src, size_t n) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!concurrent_) {
    CheckBounds(src, n, "payload read");
    std::memcpy(dst, src, n);
    return;
  }
  ParkAndAwaitGrant(lock);
  CheckBounds(src, n, "payload read");
  RecordStep("read payload " + std::to_string(n) + "B @ " + Addr(src));
  auto* d = static_cast<std::byte*>(dst);
  const auto* s = static_cast<const std::byte*>(src);
  // Word-wise stale-aware read, mirroring CopyIn's buffering granularity.
  for (size_t off = 0; off < n; off += 4) {
    const uint8_t size = static_cast<uint8_t>(std::min<size_t>(4, n - off));
    const uint64_t v = ReadModel(s + off, size);
    std::memcpy(d + off, &v, size);
  }
}

void ModelRuntime::DoorbellRing(int id) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!concurrent_) {
    ++doorbells_[id];
    return;
  }
  ParkAndAwaitGrant(lock);
  RecordStep("ring doorbell " + std::to_string(id));
  ++doorbells_[id];
  // Transition woken waiters synchronously: the scheduler must never
  // observe a satisfied waiter still parked and misread it as stranded.
  for (ThreadCtx& t : threads_) {
    if (t.state == ThreadState::kWaiting && t.waiting_doorbell == id) {
      t.state = ThreadState::kRunning;
    }
  }
  cv_.notify_all();
}

void ModelRuntime::DoorbellWait(int id) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!concurrent_) {
    if (doorbells_[id] == 0) {
      ViolationLocked("direct-mode doorbell wait would hang");
    }
    doorbells_[id] = 0;
    return;
  }
  ParkAndAwaitGrant(lock);
  ThreadCtx& t = threads_[t_self];
  if (doorbells_[id] == 0 && !crash_happened_) {
    RecordStep("wait doorbell " + std::to_string(id));
    t.state = ThreadState::kWaiting;
    t.waiting_doorbell = id;
    cv_.notify_all();
    cv_.wait(lock, [&] {
      return doorbells_[id] > 0 || crash_happened_ || abort_ || t.killed;
    });
    if (abort_ || t.killed) throw ModelAbort{};
    t.state = ThreadState::kRunning;
    t.waiting_doorbell = -1;
  }
  RecordStep("drain doorbell " + std::to_string(id));
  doorbells_[id] = 0;  // eventfd read semantics: consume every pending ring
}

bool ModelRuntime::CrashHappened() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crash_happened_;
}

std::vector<ModelRuntime::Action> ModelRuntime::RunnableActions() const {
  std::vector<Action> actions;
  for (int i = 0; i < static_cast<int>(threads_.size()); ++i) {
    if (threads_[i].state == ThreadState::kParked) {
      actions.push_back(Action{Action::kStep, i, 0});
    }
  }
  for (int i = 0; i < static_cast<int>(threads_.size()); ++i) {
    const auto& buffer = threads_[i].buffer;
    for (size_t e = 0; e < buffer.size(); ++e) {
      // Same-address entries keep program order (a store buffer never
      // reorders writes to one location); distinct addresses may flush
      // in any order.
      bool blocked = false;
      for (size_t j = 0; j < e; ++j) {
        if (Overlaps(buffer[j].addr, buffer[j].size, buffer[e].addr,
                     buffer[e].size)) {
          blocked = true;
          break;
        }
      }
      if (!blocked) actions.push_back(Action{Action::kFlush, i, e});
    }
  }
  return actions;
}

uint32_t ModelRuntime::PickChoiceLocked(uint32_t num_options) {
  uint32_t choice = 0;
  const size_t depth = choice_taken_->size();
  if (rng_state_ != 0) {
    choice = static_cast<uint32_t>(SplitMix64(&rng_state_) % num_options);
  } else if (choice_prefix_ != nullptr && depth < choice_prefix_->size()) {
    choice = std::min((*choice_prefix_)[depth], num_options - 1);
  }
  choice_taken_->push_back(choice);
  choice_options_->push_back(num_options);
  return choice;
}

void ModelRuntime::RunOneExecution(const ExploreSpec& spec,
                                   const std::vector<uint32_t>& prefix,
                                   std::vector<uint32_t>* taken,
                                   std::vector<uint32_t>* options,
                                   uint64_t seed) {
  Reset();
  if (spec.setup) spec.setup();

  {
    std::lock_guard<std::mutex> lock(mu_);
    concurrent_ = true;
    choice_prefix_ = &prefix;
    choice_taken_ = taken;
    choice_options_ = options;
    rng_state_ = seed;
    threads_.resize(spec.threads.size());
    for (size_t i = 0; i < spec.threads.size(); ++i) {
      threads_[i].name = spec.threads[i].name;
    }
  }
  for (size_t i = 0; i < spec.threads.size(); ++i) {
    std::function<void()> body = spec.threads[i].body;
    threads_[i].thread = std::thread([this, i, body] {
      t_self = static_cast<int>(i);
      try {
        body();
      } catch (const ModelAbort&) {
      }
      std::lock_guard<std::mutex> lock(mu_);
      if (threads_[i].state != ThreadState::kCrashed) {
        threads_[i].state = ThreadState::kFinished;
      }
      cv_.notify_all();
    });
  }

  {
    std::unique_lock<std::mutex> lock(mu_);
    int steps = 0;
    for (;;) {
      cv_.wait(lock, [&] {
        if (granted_ != -1) return false;
        for (const ThreadCtx& t : threads_) {
          if (t.state == ThreadState::kRunning) return false;
        }
        return true;
      });
      if (abort_) break;
      std::vector<Action> actions = RunnableActions();
      const bool crash_possible =
          spec.crash_thread >= 0 && !crash_happened_ &&
          threads_[spec.crash_thread].state == ThreadState::kParked;
      if (crash_possible) {
        actions.push_back(Action{Action::kCrash, spec.crash_thread, 0});
      }
      if (actions.empty()) {
        bool waiting = false;
        for (const ThreadCtx& t : threads_) {
          if (t.state == ThreadState::kWaiting) waiting = true;
        }
        if (waiting) {
          try {
            ViolationLocked(
                "lost doorbell wakeup: a consumer is parked with no "
                "publisher left to ring it");
          } catch (const ModelAbort&) {
          }
        }
        break;
      }
      if (++steps > spec.max_steps) {
        try {
          ViolationLocked("scheduler step cap exceeded (livelock?)");
        } catch (const ModelAbort&) {
        }
        break;
      }
      const Action act =
          actions[PickChoiceLocked(static_cast<uint32_t>(actions.size()))];
      try {
        switch (act.kind) {
          case Action::kStep:
            granted_ = act.thread;
            cv_.notify_all();
            break;
          case Action::kFlush:
            FlushEntry(act.thread, act.buffer_index);
            break;
          case Action::kCrash: {
            ThreadCtx& t = threads_[act.thread];
            RecordStep("CRASH " + t.name +
                       " (SIGKILL between instructions; buffered stores "
                       "remain flushable)");
            t.state = ThreadState::kCrashed;
            t.killed = true;
            crash_happened_ = true;
            // Peer death wakes every doorbell waiter (the poll loop gets
            // a hangup); transition them synchronously so the scheduler
            // never misreads a woken waiter as stranded.
            for (ThreadCtx& w : threads_) {
              if (w.state == ThreadState::kWaiting) {
                w.state = ThreadState::kRunning;
              }
            }
            cv_.notify_all();
            break;
          }
        }
      } catch (const ModelAbort&) {
        break;
      }
    }
    // Unwind: every gated thread observes abort_ (or has finished).
    abort_ = abort_ || violated_;
    if (abort_) cv_.notify_all();
  }
  // Threads parked for a grant see neither abort_ nor a grant when the
  // scheduler exits cleanly; release them so join() returns.
  {
    std::lock_guard<std::mutex> lock(mu_);
    bool straggler = false;
    for (const ThreadCtx& t : threads_) {
      if (t.state == ThreadState::kParked ||
          t.state == ThreadState::kWaiting) {
        straggler = true;
      }
    }
    if (straggler) {
      abort_ = true;
      cv_.notify_all();
    }
  }
  for (ThreadCtx& t : threads_) {
    if (t.thread.joinable()) t.thread.join();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    concurrent_ = false;
    choice_prefix_ = nullptr;
  }
  if (!violated_ && spec.final_check) {
    try {
      spec.final_check();
    } catch (const ModelAbort&) {
    }
  }
}

ExploreResult ModelRuntime::Explore(const ExploreSpec& spec,
                                    uint64_t max_schedules,
                                    bool stop_at_first_violation,
                                    uint64_t seed) {
  ExploreResult result;
  std::vector<uint32_t> prefix;
  for (uint64_t e = 0; e < max_schedules; ++e) {
    std::vector<uint32_t> taken;
    std::vector<uint32_t> options;
    RunOneExecution(spec, prefix, &taken, &options,
                    seed == 0 ? 0 : seed + e);
    ++result.executions;
    if (violated_) {
      ++result.violations;
      if (result.first_violation.empty()) {
        result.first_violation = violation_message_;
        result.first_trace = trace_;
      }
      if (stop_at_first_violation) return result;
    }
    if (seed == 0) {
      // DFS: advance the deepest branch point with an untaken option.
      int i = static_cast<int>(taken.size()) - 1;
      while (i >= 0 && taken[i] + 1 >= options[i]) --i;
      if (i < 0) {
        result.exhausted = true;
        return result;
      }
      prefix.assign(taken.begin(), taken.begin() + i);
      prefix.push_back(taken[i] + 1);
    }
  }
  return result;
}

}  // namespace check
}  // namespace mjoin
