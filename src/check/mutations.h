#ifndef MJOIN_CHECK_MUTATIONS_H_
#define MJOIN_CHECK_MUTATIONS_H_

/// Seeded bugs for mjoin_check's mutation self-test.
///
/// Each mutation weakens one specific guarantee of the production shm
/// ring (src/net/shm_ring.cc); the self-test proves the checker's teeth
/// by enabling them one at a time and requiring every one to be caught.
/// The hooks live in the production source as MJOIN_SHM_MUTATION(id)
/// sites, which compile to the constant false outside the checker.
namespace mjoin {
namespace check {

enum class Mutation {
  kNone = 0,
  /// Commit's tail publish drops its release ordering, so the cursor may
  /// become visible before the record bytes it claims to publish.
  kCommitTailRelaxed,
  /// Commit publishes the tail before writing the record header.
  kPublishBeforeWrite,
  /// TryRead's tail load drops its acquire ordering, so the record bytes
  /// the cursor covers may not be visible to the consumer yet.
  kReadTailRelaxed,
  /// TryReserve's wrap threshold is off by one alignment unit, letting a
  /// record straddle the end of the data region.
  kStraddleRecord,
  /// TryReserve admits a record one alignment unit larger than the free
  /// space, overlapping records the consumer has not released.
  kOverclaimAvail,
  /// TryReserve publishes a wrap pad even when it would overwrite
  /// records the consumer has not released.
  kPadOverwrite,
  /// TryRead's pad skip advances only the local cursor, never returning
  /// the pad's space to the producer.
  kPadSkipNoRelease,
  /// TryRead's span validation uses the overflow-unsafe `head + rec >
  /// tail` form, which misfires near 2^64 cursor wrap.
  kWrapUnsafeCompare,
  /// The producer's doorbell coalescing drops every ring after the
  /// first, losing the wakeup a parked consumer depends on.
  kDoorbellDropped,
};

inline constexpr int kNumMutations = 9;

const char* MutationName(Mutation m);

/// Parses a MutationName back to its enum; kNone when unknown.
Mutation MutationFromName(const char* name);

/// The currently armed mutation (kNone outside mutant runs). Read by the
/// MJOIN_SHM_MUTATION sites in the recompiled production code and by the
/// harness's doorbell logic.
Mutation CurrentMutation();
void SetMutation(Mutation m);

/// True when `m` is the armed mutation. The expansion target of
/// MJOIN_SHM_MUTATION(id) under -DMJOIN_SHM_MEMORY_MODEL.
bool MutationEnabled(Mutation m);

}  // namespace check
}  // namespace mjoin

#endif  // MJOIN_CHECK_MUTATIONS_H_
