#ifndef MJOIN_CHECK_MODEL_POLICY_H_
#define MJOIN_CHECK_MODEL_POLICY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "check/model_runtime.h"
#include "check/mutations.h"

/// The model-checking side of the net/shm_memory_model.h seam. Only the
/// mjoin_check binary compiles shm_ring.cc against this header
/// (-DMJOIN_SHM_MEMORY_MODEL); everything else gets the production
/// std::atomic definitions.
namespace mjoin {

/// Drop-in for std::atomic<uint64_t> in ShmRingHdr. Layout must stay a
/// bare u64 so sizeof(ShmRingHdr) == 192 keeps holding. `mutable` because
/// the const load path (tail_cursor/head_cursor) still routes through the
/// runtime.
class ModelAtomicU64 {
 public:
  ModelAtomicU64() = default;

  void store(uint64_t v, std::memory_order order) {
    check::ModelRuntime::Get().AtomicStore64(&value_, v, order);
  }
  uint64_t load(std::memory_order order) const {
    return check::ModelRuntime::Get().AtomicLoad64(&value_, order);
  }

 private:
  mutable uint64_t value_ = 0;
};

static_assert(sizeof(ModelAtomicU64) == sizeof(uint64_t),
              "model atomic must not change ShmRingHdr layout");

using ShmAtomicU64 = ModelAtomicU64;

inline void ShmStoreU32(uint32_t* p, uint32_t v) {
  check::ModelRuntime::Get().StoreWord(p, v);
}
inline uint32_t ShmLoadU32(const uint32_t* p) {
  return check::ModelRuntime::Get().LoadWord(p);
}
inline void ShmCopyIn(void* dst, const void* src, size_t n) {
  check::ModelRuntime::Get().CopyIn(dst, src, n);
}

}  // namespace mjoin

#define MJOIN_SHM_MUTATION(id) \
  ::mjoin::check::MutationEnabled(::mjoin::check::Mutation::id)

#endif  // MJOIN_CHECK_MODEL_POLICY_H_
