#include "check/mutations.h"

#include <cstring>

namespace mjoin {
namespace check {
namespace {

// Index order must match the Mutation enum (kNone at 0).
constexpr const char* kNames[] = {
    "none",
    "commit-tail-relaxed",
    "publish-before-write",
    "read-tail-relaxed",
    "straddle-record",
    "overclaim-avail",
    "pad-overwrite",
    "pad-skip-no-release",
    "wrap-unsafe-compare",
    "doorbell-dropped",
};
static_assert(sizeof(kNames) / sizeof(kNames[0]) == kNumMutations + 1,
              "name table out of sync with the Mutation enum");

Mutation g_current = Mutation::kNone;

}  // namespace

const char* MutationName(Mutation m) {
  const int i = static_cast<int>(m);
  if (i < 0 || i > kNumMutations) return "?";
  return kNames[i];
}

Mutation MutationFromName(const char* name) {
  for (int i = 1; i <= kNumMutations; ++i) {
    if (std::strcmp(kNames[i], name) == 0) return static_cast<Mutation>(i);
  }
  return Mutation::kNone;
}

Mutation CurrentMutation() { return g_current; }
void SetMutation(Mutation m) { g_current = m; }

bool MutationEnabled(Mutation m) { return g_current == m; }

}  // namespace check
}  // namespace mjoin
