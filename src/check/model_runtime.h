#ifndef MJOIN_CHECK_MODEL_RUNTIME_H_
#define MJOIN_CHECK_MODEL_RUNTIME_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "check/mutations.h"

/// The interleaving scheduler and relaxed-memory simulator behind
/// mjoin_check.
///
/// The production ring code (recompiled with -DMJOIN_SHM_MEMORY_MODEL)
/// performs every shared access through this runtime. Two modes:
///
///   Direct mode (default): accesses execute immediately on the calling
///   thread. Invariant checks (region bounds, cursor monotonicity) still
///   fire, so deterministic single-threaded scenarios catch the ring's
///   arithmetic bugs without any interleaving search.
///
///   Concurrent mode (Explore): scenario threads run for real but are
///   gated one shared access at a time by a scheduler that replays a
///   DFS-enumerated choice sequence. The memory simulation:
///
///     - Relaxed atomic stores and all plain stores enter the writing
///       thread's store buffer. Each buffered entry is flushed to memory
///       as its own schedulable step, and entries to distinct addresses
///       may flush out of program order — modelling both hardware store
///       buffers and compiler reordering of unordered stores.
///     - A release store flushes the thread's buffer in order, then
///       writes its own value, as one atomic step.
///     - Every flushed write stamps its location with a global epoch and
///       remembers the previous value. An acquire load adopts the
///       location's stamp into the reader's acquired horizon; a plain or
///       relaxed load of a location stamped *beyond* the reader's horizon
///       by another thread returns the previous value — the stale read
///       an unsynchronized CPU is entitled to serve.
///     - A crash action (enabled per scenario) kills a thread between
///       steps. Its buffered stores remain flushable — SIGKILL does not
///       roll back stores the CPU already executed — but no further
///       instruction runs, which is exactly the mid-write-kill the ring's
///       publish protocol must make unobservable.
///
///   Doorbells model the data plane's eventfd wakeups: Ring increments a
///   counter and unparks waiters, Wait consumes the counter or parks.
///   A state where some thread is parked and no thread can run again is
///   reported as a lost wakeup.
namespace mjoin {
namespace check {

/// Thrown by runtime calls on an invariant violation in direct mode, and
/// by gated threads when the exploration aborts. Scenario threads must
/// let it propagate (the thread wrapper catches it).
struct ModelAbort {};

/// One scenario thread: a body plus a human-readable name for traces.
struct ModelThread {
  std::string name;
  std::function<void()> body;
};

/// One fully-specified concurrent exploration.
struct ExploreSpec {
  /// Re-establishes the initial shared state (ring Init, region/cursor
  /// registration) before each execution, in direct mode.
  std::function<void()> setup;
  std::vector<ModelThread> threads;
  /// Index into `threads` of the thread the scheduler may crash (one
  /// crash per execution, at any step), or -1 to disable crash points.
  int crash_thread = -1;
  /// Runs after every non-violating execution, in direct mode, with all
  /// threads joined. Throw via ModelRuntime::Violation on failure.
  std::function<void()> final_check;
  /// Hard cap on scheduler steps per execution (runaway guard).
  int max_steps = 20000;
};

struct ExploreResult {
  uint64_t executions = 0;
  uint64_t violations = 0;
  bool exhausted = false;  // DFS covered the whole bounded space
  std::string first_violation;
  std::vector<std::string> first_trace;
};

class ModelRuntime {
 public:
  static ModelRuntime& Get();

  /// Clears regions, cursors, locations, doorbells, and violation state.
  void Reset();

  /// Registers the legal shared region; any modelled store outside it is
  /// an out-of-region violation (a record straddling the data region's
  /// end lands here before it can corrupt adjacent memory).
  void RegisterRegion(void* base, size_t bytes);
  /// Marks an atomic location as a ring cursor: every store must move it
  /// forward by at most `max_step` bytes (DESIGN.md §14 monotonicity,
  /// phrased wrap-safely: cursors are free-running u64s that may cross
  /// 2^64, so "non-decreasing" means a small modular forward step).
  void RegisterCursor(void* addr, const char* name, uint64_t max_step);

  // -- shared accesses (the model_policy seam calls these) --------------
  void StoreWord(uint32_t* addr, uint32_t v);
  uint32_t LoadWord(const uint32_t* addr);
  void CopyIn(void* dst, const void* src, size_t n);
  void AtomicStore64(uint64_t* addr, uint64_t v, std::memory_order order);
  uint64_t AtomicLoad64(const uint64_t* addr, std::memory_order order);

  /// Stale-aware bulk read for harness-side payload validation (the
  /// production consumer hands out a raw pointer; reading through the
  /// model keeps the simulated memory semantics).
  void ReadPayload(void* dst, const void* src, size_t n);

  // -- doorbells ---------------------------------------------------------
  void DoorbellRing(int id);
  void DoorbellWait(int id);

  /// True once the crash action has fired this execution (models the
  /// peer-death notification a poll loop gets when a worker dies).
  bool CrashHappened() const;

  /// Records a violation and aborts the current execution/scenario step.
  [[noreturn]] void Violation(const std::string& message);

  /// Explores interleavings of `spec` by stateless DFS replay, up to
  /// `max_schedules` executions. `stop_at_first_violation` short-circuits
  /// mutant runs. `seed` != 0 switches to uniform random walks instead of
  /// DFS (for spot-checking bigger spaces).
  ExploreResult Explore(const ExploreSpec& spec, uint64_t max_schedules,
                        bool stop_at_first_violation, uint64_t seed);

  bool violated() const { return violated_; }
  const std::string& violation_message() const { return violation_message_; }
  const std::vector<std::string>& trace() const { return trace_; }

 private:
  ModelRuntime() = default;

  struct StoreEntry {
    void* addr = nullptr;
    uint8_t size = 0;  // 4 or 8
    uint64_t value = 0;
    std::string what;
  };

  struct Location {
    uint64_t stamp = 0;
    int writer = -1;
    uint64_t prev = 0;
  };

  enum class ThreadState {
    kRunning,   // executing scenario code between shared accesses
    kParked,    // waiting at a shared access for the scheduler's grant
    kWaiting,   // parked on a doorbell
    kFinished,
    kCrashed,
  };

  struct ThreadCtx {
    std::string name;
    std::thread thread;
    ThreadState state = ThreadState::kRunning;
    int waiting_doorbell = -1;
    bool killed = false;
    std::vector<StoreEntry> buffer;
    uint64_t acquired = 0;
  };

  struct Action {
    enum Kind { kStep, kFlush, kCrash } kind = kStep;
    int thread = -1;
    size_t buffer_index = 0;
  };

  // All private helpers run with mu_ held.
  void ParkAndAwaitGrant(std::unique_lock<std::mutex>& lock);
  [[noreturn]] void ViolationLocked(const std::string& message);
  void FlushEntry(int thread, size_t index);
  void ApplyWrite(void* addr, uint8_t size, uint64_t value, int writer);
  uint64_t ReadFresh(const void* addr, uint8_t size) const;
  uint64_t ReadModel(const void* addr, uint8_t size);  // stale-aware
  uint64_t Forwarded(const void* addr, uint8_t size, bool* hit);
  void CheckBounds(const void* addr, size_t n, const char* what);
  void RecordStep(std::string what);
  std::string Addr(const void* addr) const;
  std::vector<Action> RunnableActions() const;
  uint32_t PickChoiceLocked(uint32_t num_options);
  void RunOneExecution(const ExploreSpec& spec,
                       const std::vector<uint32_t>& prefix,
                       std::vector<uint32_t>* taken,
                       std::vector<uint32_t>* options, uint64_t seed);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool concurrent_ = false;
  bool abort_ = false;
  int granted_ = -1;
  std::vector<ThreadCtx> threads_;
  std::unordered_map<const void*, Location> locations_;
  uint64_t epoch_ = 0;
  std::byte* region_base_ = nullptr;
  size_t region_bytes_ = 0;
  struct CursorInfo {
    std::string name;
    uint64_t max_step = 0;
  };
  std::unordered_map<void*, CursorInfo> cursors_;
  std::unordered_map<int, uint64_t> doorbells_;
  bool crash_happened_ = false;
  bool violated_ = false;
  std::string violation_message_;
  std::vector<std::string> trace_;
  // Per-execution choice state (scheduler side).
  const std::vector<uint32_t>* choice_prefix_ = nullptr;
  std::vector<uint32_t>* choice_taken_ = nullptr;
  std::vector<uint32_t>* choice_options_ = nullptr;
  uint64_t rng_state_ = 0;
};

}  // namespace check
}  // namespace mjoin

#endif  // MJOIN_CHECK_MODEL_RUNTIME_H_
