#ifndef MJOIN_CHECK_RING_HARNESS_H_
#define MJOIN_CHECK_RING_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "check/mutations.h"

/// The scenario catalogue mjoin_check runs against the production ShmRing
/// (recompiled over the model-checking memory policy). Each scenario
/// asserts the DESIGN.md §14 ring invariants; the mutation self-test
/// additionally requires each seeded bug to be caught by its designated
/// scenario.
namespace mjoin {
namespace check {

struct ScenarioResult {
  std::string name;
  bool violated = false;
  std::string message;
  uint64_t executions = 0;
  bool exhausted = false;
  std::vector<std::string> trace;
};

/// All scenario names, in catalogue order:
///   wrap_pad     direct: pad publication at the wrap point, record
///                straddle refusal, pad refusal when it would trample
///                unreleased records, second-lap recovery.
///   accounting   direct: full-ring refusal, drain accounting
///                (drained ring implies head == tail), pad space
///                returned to the producer, refuse/recover cycle.
///   near_wrap    direct: cursors seeded just below 2^64 push and read
///                across the numeric wrap.
///   race_publish interleaved: one producer record vs a doorbell-paced
///                consumer; publish/consume ordering under store-buffer
///                reordering and stale reads.
///   doorbell     interleaved: two records with per-publish doorbell
///                rings; no interleaving may strand a parked consumer.
///   crash_publish interleaved + crash points: producer may be killed
///                between any two instructions; the consumer must see an
///                intact record prefix, never a torn or phantom record.
std::vector<std::string> ScenarioNames();

/// The scenario whose violation proves `m` is caught.
const char* CatchingScenario(Mutation m);

/// Runs one scenario with `mutation` armed (kNone for baseline).
/// `max_schedules` bounds interleaved exploration; `seed` != 0 switches
/// from DFS to random walks. Direct scenarios run exactly once.
ScenarioResult RunScenario(const std::string& name, Mutation mutation,
                           uint64_t max_schedules, uint64_t seed);

}  // namespace check
}  // namespace mjoin

#endif  // MJOIN_CHECK_RING_HARNESS_H_
