// mjoin_check: bounded interleaving model checker for the shm ring.
//
// The binary recompiles the production src/net/shm_ring.cc over the
// model-checking memory policy (-DMJOIN_SHM_MEMORY_MODEL) and drives it
// through the scenario catalogue in ring_harness.cc. Commands:
//
//   mjoin_check list                         scenarios and mutations
//   mjoin_check run [--scenario S] [--mutation M]
//                   [--schedules N] [--seed K]
//   mjoin_check mutants [--schedules N]      every seeded bug must be caught
//   mjoin_check selftest [--schedules N]     baseline clean AND mutants caught
//
// selftest is the CI entry point: it proves both soundness (the
// unmutated ring passes every scenario) and teeth (each of the nine
// seeded bugs is caught by its designated scenario).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/mutations.h"
#include "check/ring_harness.h"

namespace mjoin {
namespace check {
namespace {

struct Options {
  std::string scenario;  // empty = all
  Mutation mutation = Mutation::kNone;
  uint64_t schedules = 20000;
  uint64_t seed = 0;
};

void PrintTrace(const ScenarioResult& result, size_t max_lines) {
  const size_t n = result.trace.size();
  const size_t from = n > max_lines ? n - max_lines : 0;
  if (from > 0) {
    std::printf("    ... (%zu earlier steps)\n", from);
  }
  for (size_t i = from; i < n; ++i) {
    std::printf("    %s\n", result.trace[i].c_str());
  }
}

void PrintResult(const ScenarioResult& result, bool expect_violation) {
  const bool pass = result.violated == expect_violation;
  std::printf("%-14s %-22s %-8s %6llu exec%s%s\n", result.name.c_str(),
              expect_violation ? "(mutant: must catch)" : "(baseline)",
              pass ? "PASS" : "FAIL",
              static_cast<unsigned long long>(result.executions),
              result.exhausted ? " exhaustive" : "",
              result.violated ? "" : " clean");
  if (result.violated) {
    std::printf("    caught: %s\n", result.message.c_str());
  }
  if (!pass) PrintTrace(result, 40);
}

int CmdList() {
  std::printf("scenarios:\n");
  for (const std::string& name : ScenarioNames()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("mutations (each caught by the named scenario):\n");
  for (int i = 1; i <= kNumMutations; ++i) {
    const Mutation m = static_cast<Mutation>(i);
    std::printf("  %-22s -> %s\n", MutationName(m), CatchingScenario(m));
  }
  return 0;
}

int CmdRun(const Options& opts) {
  std::vector<std::string> names =
      opts.scenario.empty() ? ScenarioNames()
                            : std::vector<std::string>{opts.scenario};
  const bool expect_violation = opts.mutation != Mutation::kNone;
  int failures = 0;
  for (const std::string& name : names) {
    const ScenarioResult result =
        RunScenario(name, opts.mutation, opts.schedules, opts.seed);
    PrintResult(result, expect_violation);
    if (result.violated != expect_violation) ++failures;
  }
  return failures == 0 ? 0 : 1;
}

int CmdMutants(const Options& opts) {
  int caught = 0;
  for (int i = 1; i <= kNumMutations; ++i) {
    const Mutation m = static_cast<Mutation>(i);
    ScenarioResult result =
        RunScenario(CatchingScenario(m), m, opts.schedules, opts.seed);
    std::printf("mutant %-22s @ %-13s %s", MutationName(m),
                result.name.c_str(),
                result.violated ? "CAUGHT" : "MISSED");
    if (result.violated) {
      std::printf(" — %s\n", result.message.c_str());
      ++caught;
    } else {
      std::printf(" after %llu executions\n",
                  static_cast<unsigned long long>(result.executions));
    }
  }
  std::printf("mutation self-test: %d/%d caught\n", caught, kNumMutations);
  return caught == kNumMutations ? 0 : 1;
}

int CmdSelftest(const Options& opts) {
  int failures = 0;
  for (const std::string& name : ScenarioNames()) {
    const ScenarioResult result =
        RunScenario(name, Mutation::kNone, opts.schedules, opts.seed);
    PrintResult(result, /*expect_violation=*/false);
    if (result.violated) ++failures;
  }
  if (CmdMutants(opts) != 0) ++failures;
  if (failures == 0) {
    std::printf("mjoin_check selftest OK: %zu scenarios clean, %d/%d "
                "mutations caught\n",
                ScenarioNames().size(), kNumMutations, kNumMutations);
    return 0;
  }
  std::printf("mjoin_check selftest FAILED\n");
  return 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: mjoin_check <list|run|mutants|selftest> "
                 "[--scenario S] [--mutation M] [--schedules N] [--seed K]\n");
    return 2;
  }
  const std::string cmd = argv[1];
  Options opts;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scenario") {
      opts.scenario = next();
    } else if (arg == "--mutation") {
      const char* name = next();
      opts.mutation = MutationFromName(name);
      if (opts.mutation == Mutation::kNone) {
        std::fprintf(stderr, "unknown mutation: %s\n", name);
        return 2;
      }
    } else if (arg == "--schedules") {
      opts.schedules = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed") {
      opts.seed = std::strtoull(next(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (cmd == "list") return CmdList();
  if (cmd == "run") return CmdRun(opts);
  if (cmd == "mutants") return CmdMutants(opts);
  if (cmd == "selftest") return CmdSelftest(opts);
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return 2;
}

}  // namespace
}  // namespace check
}  // namespace mjoin

int main(int argc, char** argv) { return mjoin::check::Main(argc, argv); }
