#ifndef MJOIN_COMMON_CANCELLATION_H_
#define MJOIN_COMMON_CANCELLATION_H_

#include <atomic>
#include <memory>

namespace mjoin {

/// Cooperative cancellation flag for one query execution. Copies share the
/// same underlying state, so a caller can keep a copy, hand another to
/// ThreadExecOptions, and later Cancel() from any thread; operators and the
/// executor poll cancelled() at batch boundaries. Never blocks, never
/// throws — a cancelled query winds down at the next batch boundary and
/// returns Status::Cancelled.
class CancellationToken {
 public:
  CancellationToken() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  CancellationToken(const CancellationToken&) = default;
  CancellationToken& operator=(const CancellationToken&) = default;

  /// Requests cancellation. Idempotent; safe from any thread.
  void Cancel() { state_->store(true, std::memory_order_release); }

  bool cancelled() const { return state_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

}  // namespace mjoin

#endif  // MJOIN_COMMON_CANCELLATION_H_
