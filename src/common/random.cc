#include "common/random.h"

#include "common/logging.h"

namespace mjoin {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Mix64(uint64_t value) {
  uint64_t state = value;
  return SplitMix64(&state);
}

Random::Random(uint64_t seed) {
  // Seed the four xoshiro words from SplitMix64, per the reference
  // implementation's recommendation; avoids the all-zero state.
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t bound) {
  MJOIN_DCHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  MJOIN_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Random::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

std::vector<uint32_t> Random::Permutation(uint32_t n) {
  std::vector<uint32_t> perm(n);
  for (uint32_t i = 0; i < n; ++i) perm[i] = i;
  Shuffle(&perm);
  return perm;
}

}  // namespace mjoin
