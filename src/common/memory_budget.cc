#include "common/memory_budget.h"

#include "common/string_util.h"

namespace mjoin {

Status MemoryBudget::Reserve(size_t bytes) {
  if (bytes == 0) return Status::OK();
  size_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (limit_ != 0 && now > limit_) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        StrCat("memory budget exceeded: need ", bytes, " more bytes, ",
               now - bytes, " of ", limit_, " already in use"));
  }
  UpdatePeak(now);
  return Status::OK();
}

void MemoryBudget::Release(size_t bytes) {
  if (bytes == 0) return;
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

void MemoryBudget::UpdatePeak(size_t candidate) {
  size_t seen = peak_.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !peak_.compare_exchange_weak(seen, candidate,
                                      std::memory_order_relaxed)) {
  }
}

void MemoryReservation::Attach(MemoryBudget* budget) {
  Reset();
  budget_ = budget;
}

Status MemoryReservation::Resize(size_t new_bytes) {
  if (budget_ == nullptr) {
    bytes_ = new_bytes;
    return Status::OK();
  }
  if (new_bytes > bytes_) {
    MJOIN_RETURN_IF_ERROR(budget_->Reserve(new_bytes - bytes_));
  } else if (new_bytes < bytes_) {
    budget_->Release(bytes_ - new_bytes);
  }
  bytes_ = new_bytes;
  return Status::OK();
}

void MemoryReservation::Reset() {
  if (budget_ != nullptr && bytes_ > 0) budget_->Release(bytes_);
  bytes_ = 0;
  budget_ = nullptr;
}

}  // namespace mjoin
