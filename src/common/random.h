#ifndef MJOIN_COMMON_RANDOM_H_
#define MJOIN_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mjoin {

/// Deterministic, seedable PRNG (xoshiro256**). All randomized components
/// in the library take an explicit Random so that every experiment is
/// reproducible from its seed.
class Random {
 public:
  explicit Random(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound) via Lemire's multiply-shift rejection method.
  /// Precondition: bound > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Returns a uniformly random permutation of 0..n-1.
  std::vector<uint32_t> Permutation(uint32_t n);

 private:
  uint64_t state_[4];
};

/// SplitMix64 step: used for seeding and as a cheap stateless hash/mixer.
uint64_t SplitMix64(uint64_t* state);

/// Finalizing 64-bit mixer (the SplitMix64 finalizer); good avalanche
/// behaviour, used for hash partitioning of join keys.
uint64_t Mix64(uint64_t value);

}  // namespace mjoin

#endif  // MJOIN_COMMON_RANDOM_H_
