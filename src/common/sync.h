#ifndef MJOIN_COMMON_SYNC_H_
#define MJOIN_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace mjoin {

/// std::mutex with Clang thread-safety annotations. libstdc++'s mutex is
/// not annotated, so the `-Wthread-safety` analysis cannot track it; this
/// wrapper is the project's one lockable type, and every mutex-protected
/// structure declares its guarded members against an mjoin::Mutex.
///
/// Also satisfies BasicLockable (lock()/unlock()), so CondVar can wait on
/// it directly.
class MJOIN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MJOIN_ACQUIRE() { mu_.lock(); }
  void Unlock() MJOIN_RELEASE() { mu_.unlock(); }

  /// BasicLockable spelling for std waiters; annotated identically.
  void lock() MJOIN_ACQUIRE() { mu_.lock(); }
  void unlock() MJOIN_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over an mjoin::Mutex (the std::lock_guard of this codebase).
class MJOIN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) MJOIN_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() MJOIN_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to mjoin::Mutex. Waits require the mutex held
/// (the analysis enforces it); the predicate loop lives at the call site,
/// in annotated code, instead of inside an un-annotatable lambda:
///
///   MutexLock lock(&mutex_);
///   while (!stop_ && queue_.empty()) not_empty_.Wait(mutex_);
///
/// Built on condition_variable_any so it can wait on the annotated type
/// directly; notification is allowed with or without the mutex held.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and re-acquires before returning.
  void Wait(Mutex& mu) MJOIN_REQUIRES(mu) { cv_.wait(mu); }

  /// Wait bounded by an absolute deadline; false on timeout. Callers loop
  /// on their predicate with a fixed deadline, so spurious wakeups do not
  /// extend the total wait.
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      MJOIN_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace mjoin

#endif  // MJOIN_COMMON_SYNC_H_
