#ifndef MJOIN_COMMON_STRING_UTIL_H_
#define MJOIN_COMMON_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace mjoin {

/// Concatenates the string representations of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  // Comma fold (not `os << ... << args`): the empty pack then expands to
  // nothing instead of a value-less `os;` statement, which -Werror flags.
  ((os << args), ...);
  return os.str();
}

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Splits `text` on `sep` (single character); keeps empty fields.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Pads or truncates `text` to exactly `width` characters, left-aligned.
std::string PadRight(std::string_view text, size_t width);

/// Pads (never truncates) `text` to at least `width` characters,
/// right-aligned.
std::string PadLeft(std::string_view text, size_t width);

/// Formats `value` with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

/// Human-readable byte count ("1.5 MiB").
std::string FormatBytes(uint64_t bytes);

}  // namespace mjoin

#endif  // MJOIN_COMMON_STRING_UTIL_H_
