#include "common/table_printer.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace mjoin {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  MJOIN_CHECK(cells.size() == headers_.size())
      << "row has " << cells.size() << " cells, expected " << headers_.size();
  rows_.push_back(Row{false, std::move(cells)});
}

void TablePrinter::AddSeparator() { rows_.push_back(Row{true, {}}); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto render_separator = [&widths]() {
    std::string line = "+";
    for (size_t w : widths) {
      line += std::string(w + 2, '-');
      line += "+";
    }
    line += "\n";
    return line;
  };
  auto render_row = [&widths](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      line += " ";
      line += PadRight(cells[c], widths[c]);
      line += " |";
    }
    line += "\n";
    return line;
  };

  std::string out = render_separator();
  out += render_row(headers_);
  out += render_separator();
  for (const Row& row : rows_) {
    out += row.separator ? render_separator() : render_row(row.cells);
  }
  out += render_separator();
  return out;
}

}  // namespace mjoin
