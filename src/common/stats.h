#ifndef MJOIN_COMMON_STATS_H_
#define MJOIN_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mjoin {

/// Online accumulator for min/max/mean/variance (Welford's algorithm).
class StatsAccumulator {
 public:
  void Add(double value);

  int64_t count() const { return count_; }
  double min() const;
  double max() const;
  double mean() const;
  double sum() const { return sum_; }
  /// Sample standard deviation; 0 for fewer than two samples.
  double stddev() const;

 private:
  int64_t count_ = 0;
  double min_ = 0;
  double max_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double sum_ = 0;
};

/// Percentile over a sample set kept in memory, computed by linear
/// interpolation between the two closest ranks (numpy's default method):
/// Percentile(50) over {1..100} is 50.5, not a member of the set. The
/// samples are sorted lazily — a run of Percentile() calls with no
/// intervening Add() sorts once.
class PercentileTracker {
 public:
  void Add(double value) {
    values_.push_back(value);
    sorted_ = false;
  }

  /// p in [0, 100]. Returns 0 when empty.
  double Percentile(double p) const;

  /// Appends all of `other`'s samples (e.g. merging per-thread trackers).
  void Merge(const PercentileTracker& other);

  size_t count() const { return values_.size(); }

  /// The retained samples, in unspecified order.
  const std::vector<double>& values() const { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
};

}  // namespace mjoin

#endif  // MJOIN_COMMON_STATS_H_
