#ifndef MJOIN_COMMON_STATS_H_
#define MJOIN_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mjoin {

/// Online accumulator for min/max/mean/variance (Welford's algorithm).
class StatsAccumulator {
 public:
  void Add(double value);

  int64_t count() const { return count_; }
  double min() const;
  double max() const;
  double mean() const;
  double sum() const { return sum_; }
  /// Sample standard deviation; 0 for fewer than two samples.
  double stddev() const;

 private:
  int64_t count_ = 0;
  double min_ = 0;
  double max_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double sum_ = 0;
};

/// Percentile over a bounded sample set, computed by linear interpolation
/// between the two closest ranks (numpy's default method): Percentile(50)
/// over {1..100} is 50.5, not a member of the set. The samples are sorted
/// lazily — a run of Percentile() calls with no intervening Add() sorts
/// once.
///
/// At most kMaxSamples samples are retained; past the cap, Add() reservoir-
/// samples (algorithm R) so the retained set stays a uniform sample of
/// everything observed. The replacement stream comes from a private LCG
/// seeded at construction, so a tracker fed the same sequence retains the
/// same set on every run — long-lived consumers (a server's latency
/// histograms) get bounded memory without losing determinism.
class PercentileTracker {
 public:
  static constexpr size_t kMaxSamples = 4096;

  void Add(double value) {
    ++total_;
    if (values_.size() < kMaxSamples) {
      values_.push_back(value);
      sorted_ = false;
      return;
    }
    // Algorithm R: keep the new sample with probability cap/total, in a
    // uniformly random retained slot.
    const uint64_t slot = NextRandom() % total_;
    if (slot < kMaxSamples) {
      values_[static_cast<size_t>(slot)] = value;
      sorted_ = false;
    }
  }

  /// p in [0, 100]. Returns 0 when empty.
  double Percentile(double p) const;

  /// Folds `other` in (e.g. merging per-thread trackers): totals add, and
  /// the retained sets concatenate up to the cap (past it, the surplus
  /// reservoir-replaces).
  void Merge(const PercentileTracker& other);

  /// Samples observed (not capped).
  uint64_t count() const { return total_; }

  /// The retained samples, in unspecified order; at most kMaxSamples.
  const std::vector<double>& values() const { return values_; }

 private:
  uint64_t NextRandom() {
    seed_ = seed_ * 6364136223846793005ull + 1442695040888963407ull;
    return seed_ >> 16;
  }

  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
  uint64_t total_ = 0;
  uint64_t seed_ = 0x9e3779b97f4a7c15ull;
};

}  // namespace mjoin

#endif  // MJOIN_COMMON_STATS_H_
