#ifndef MJOIN_COMMON_STATS_H_
#define MJOIN_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mjoin {

/// Online accumulator for min/max/mean/variance (Welford's algorithm).
class StatsAccumulator {
 public:
  void Add(double value);

  int64_t count() const { return count_; }
  double min() const;
  double max() const;
  double mean() const;
  double sum() const { return sum_; }
  /// Sample standard deviation; 0 for fewer than two samples.
  double stddev() const;

 private:
  int64_t count_ = 0;
  double min_ = 0;
  double max_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double sum_ = 0;
};

/// Exact percentile (nearest-rank) over a sample set kept in memory.
class PercentileTracker {
 public:
  void Add(double value) { values_.push_back(value); }
  /// p in [0, 100]. Returns 0 when empty.
  double Percentile(double p) const;
  size_t count() const { return values_.size(); }

 private:
  mutable std::vector<double> values_;
};

}  // namespace mjoin

#endif  // MJOIN_COMMON_STATS_H_
