#include "common/metrics.h"

#include "common/string_util.h"
#include "common/table_printer.h"

namespace mjoin {

void Gauge::Set(int64_t value) {
  value_.store(value, std::memory_order_relaxed);
  RaiseMax(value);
}

void Gauge::Add(int64_t delta) {
  int64_t now = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
  RaiseMax(now);
}

void Gauge::RaiseMax(int64_t candidate) {
  int64_t seen = max_.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !max_.compare_exchange_weak(seen, candidate,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::Observe(double value) {
  MutexLock lock(&mutex_);
  moments_.Add(value);
  samples_.Add(value);
}

// Analysis opt-out: the address-ordered double acquisition below is
// conditional, which the thread-safety analysis cannot follow. The
// discipline holds because both locks are always taken in ascending
// address order, so concurrent cross-merges cannot deadlock.
void Histogram::Merge(const Histogram& other) MJOIN_NO_THREAD_SAFETY_ANALYSIS {
  if (this == &other) return;
  Mutex* first = this < &other ? &mutex_ : &other.mutex_;
  Mutex* second = this < &other ? &other.mutex_ : &mutex_;
  MutexLock outer(first);
  MutexLock inner(second);
  for (double v : other.samples_.values()) moments_.Add(v);
  samples_.Merge(other.samples_);
}

int64_t Histogram::count() const {
  MutexLock lock(&mutex_);
  return moments_.count();
}

double Histogram::mean() const {
  MutexLock lock(&mutex_);
  return moments_.mean();
}

double Histogram::min() const {
  MutexLock lock(&mutex_);
  return moments_.min();
}

double Histogram::max() const {
  MutexLock lock(&mutex_);
  return moments_.max();
}

double Histogram::sum() const {
  MutexLock lock(&mutex_);
  return moments_.sum();
}

double Histogram::Percentile(double p) const {
  MutexLock lock(&mutex_);
  return samples_.Percentile(p);
}

MetricsSnapshot MetricsDelta(const MetricsSnapshot& before,
                             const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : after.counters) {
    auto it = before.counters.find(name);
    delta.counters[name] =
        value - (it == before.counters.end() ? 0 : it->second);
  }
  for (const auto& [name, value] : after.gauges) {
    delta.gauges[name] = value;
  }
  for (const auto& [name, point] : after.histograms) {
    auto it = before.histograms.find(name);
    MetricsSnapshot::HistogramPoint d = point;
    if (it != before.histograms.end()) {
      d.count -= it->second.count;
      d.sum -= it->second.sum;
    }
    delta.histograms[name] = d;
  }
  return delta;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  MutexLock lock(&mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  MutexLock lock(&mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  MutexLock lock(&mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

size_t MetricsRegistry::size() const {
  MutexLock lock(&mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(&mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] =
        MetricsSnapshot::HistogramPoint{histogram->count(), histogram->sum()};
  }
  return snap;
}

std::string MetricsRegistry::RenderTable() const {
  MutexLock lock(&mutex_);
  std::map<std::string, std::pair<std::string, std::string>> rows;
  for (const auto& [name, counter] : counters_) {
    rows[name] = {"counter", StrCat(counter->value())};
  }
  for (const auto& [name, gauge] : gauges_) {
    rows[name] = {"gauge",
                  StrCat(gauge->value(), " (max ", gauge->max(), ")")};
  }
  for (const auto& [name, histogram] : histograms_) {
    rows[name] = {
        "histogram",
        StrCat("n=", histogram->count(), " mean=",
               FormatDouble(histogram->mean(), 6), " p50=",
               FormatDouble(histogram->Percentile(50), 6), " p95=",
               FormatDouble(histogram->Percentile(95), 6), " max=",
               FormatDouble(histogram->max(), 6))};
  }
  TablePrinter table({"metric", "type", "value"});
  for (const auto& [name, row] : rows) {
    table.AddRow({name, row.first, row.second});
  }
  return table.ToString();
}

}  // namespace mjoin
