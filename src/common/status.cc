#include "common/status.h"

namespace mjoin {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace mjoin
