#ifndef MJOIN_COMMON_MEMORY_BUDGET_H_
#define MJOIN_COMMON_MEMORY_BUDGET_H_

#include <atomic>
#include <cstddef>

#include "common/status.h"

namespace mjoin {

/// Per-query memory accounting shared by all operation processes of one
/// execution. Operators reserve bytes as their hash tables and run buffers
/// grow and release them when the memory is dropped; exceeding the limit
/// turns into Status::ResourceExhausted at the next batch boundary instead
/// of an OOM kill. Thread-safe: reservations arrive concurrently from
/// every worker thread.
///
/// A limit of 0 means "unlimited": reservations never fail but usage and
/// the high-water mark are still tracked (they feed ThreadExecStats).
class MemoryBudget {
 public:
  explicit MemoryBudget(size_t limit_bytes = 0) : limit_(limit_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Reserves `bytes` against the budget. On overflow the reservation is
  /// rolled back and ResourceExhausted is returned.
  [[nodiscard]] Status Reserve(size_t bytes);

  /// Returns a previously reserved amount.
  void Release(size_t bytes);

  size_t limit() const { return limit_; }
  bool unlimited() const { return limit_ == 0; }
  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  void UpdatePeak(size_t candidate);

  const size_t limit_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
};

/// RAII bookkeeping for one operator's share of a MemoryBudget: tracks how
/// many bytes this holder has reserved so far and charges/releases only the
/// delta on each Resize. Detaches (releasing everything) on destruction.
/// Not thread-safe — each operator instance runs on one worker thread.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  ~MemoryReservation() { Reset(); }

  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  /// Binds the reservation to `budget` (may be null = no accounting). Any
  /// bytes held against a previous budget are released first.
  void Attach(MemoryBudget* budget);

  /// Grows or shrinks the reservation to `new_bytes` total. On failure the
  /// holder keeps its previous size and the budget is unchanged.
  [[nodiscard]] Status Resize(size_t new_bytes);

  /// Releases everything held.
  void Reset();

  size_t bytes() const { return bytes_; }
  bool attached() const { return budget_ != nullptr; }

 private:
  MemoryBudget* budget_ = nullptr;
  size_t bytes_ = 0;
};

}  // namespace mjoin

#endif  // MJOIN_COMMON_MEMORY_BUDGET_H_
