#ifndef MJOIN_COMMON_METRICS_H_
#define MJOIN_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/stats.h"
#include "common/sync.h"

namespace mjoin {

/// Monotonic event count. Add() is a relaxed atomic increment, so counters
/// can be bumped from any worker thread without coordination.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time level with a high-water mark. Set()/Add() are lock-free;
/// the max is maintained with a CAS loop, so concurrent writers never lose
/// a peak.
class Gauge {
 public:
  void Set(int64_t value);
  void Add(int64_t delta);
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  void RaiseMax(int64_t candidate);

  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// Latency histogram: Welford moments plus exact interpolated percentiles
/// over the retained samples (StatsAccumulator + PercentileTracker under
/// one mutex). Observe() is cheap — an uncontended lock, two pushes — and
/// queries sort lazily, so a histogram can sit on a per-batch path.
class Histogram {
 public:
  void Observe(double value);
  void Merge(const Histogram& other);

  int64_t count() const;
  double mean() const;
  double min() const;
  double max() const;
  double sum() const;
  double Percentile(double p) const;

 private:
  mutable Mutex mutex_;
  StatsAccumulator moments_ MJOIN_GUARDED_BY(mutex_);
  PercentileTracker samples_ MJOIN_GUARDED_BY(mutex_);
};

/// Point-in-time copy of a registry's values, cheap to take and to diff.
/// Histograms collapse to (count, sum) — enough for per-interval rates and
/// means; percentiles are read off the live registry, whose trackers are
/// bounded (PercentileTracker::kMaxSamples) and so never need resetting.
struct MetricsSnapshot {
  struct HistogramPoint {
    int64_t count = 0;
    double sum = 0;
  };
  std::map<std::string, uint64_t, std::less<>> counters;
  std::map<std::string, int64_t, std::less<>> gauges;
  std::map<std::string, HistogramPoint, std::less<>> histograms;
};

/// after - before, per metric: counters and histogram points subtract
/// (a metric absent from `before` counts from zero), gauges keep `after`'s
/// level — a gauge is a level, not a flow. Metrics absent from `after` are
/// dropped. Lets a long-lived registry report per-query activity without
/// any reset: snapshot before, snapshot after, diff.
MetricsSnapshot MetricsDelta(const MetricsSnapshot& before,
                             const MetricsSnapshot& after);

/// Named metrics for one engine component, e.g. one threaded execution.
/// counter()/gauge()/histogram() create-or-get by name; returned pointers
/// stay valid for the registry's lifetime, so hot paths resolve a metric
/// once and then update it lock-free (counters/gauges) or lock-cheap
/// (histograms). All methods are thread-safe.
class MetricsRegistry {
 public:
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  size_t size() const;

  /// Copies every metric's current value (see MetricsSnapshot).
  MetricsSnapshot Snapshot() const;

  /// All metrics, sorted by name, as an aligned table: counters print
  /// their value, gauges value and max, histograms count/mean/p50/p95/max.
  std::string RenderTable() const;

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      MJOIN_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      MJOIN_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      MJOIN_GUARDED_BY(mutex_);
};

}  // namespace mjoin

#endif  // MJOIN_COMMON_METRICS_H_
