#ifndef MJOIN_COMMON_STATUS_H_
#define MJOIN_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace mjoin {

/// Canonical error codes, modelled after the Arrow/RocksDB style Status.
/// The library does not use exceptions; all fallible operations return a
/// Status (or StatusOr<T>, see statusor.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kResourceExhausted = 8,
  kCancelled = 9,
  kDeadlineExceeded = 10,
  /// A required peer (worker process, socket endpoint) is gone. Unlike
  /// kInternal this is an environmental failure: retrying the query on a
  /// fresh executor may succeed.
  kUnavailable = 11,
};

/// Returns a human-readable name for `code` ("OK", "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A Status holds an error code plus a message. The OK status carries no
/// allocation and is cheap to copy.
///
/// The class is [[nodiscard]]: every call returning a Status by value must
/// handle it, propagate it (MJOIN_RETURN_IF_ERROR), or discard it with an
/// explicit `(void)` cast plus a comment saying why dropping it is safe.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  [[nodiscard]] static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  [[nodiscard]] static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// True when `status` reports an environmental failure (kUnavailable: a
/// dead worker, a dropped connection, corrupt wire bytes) — the one class
/// of failure where re-running the same operation against a fresh
/// executor/fleet may succeed. Deterministic failures (kInvalidArgument,
/// kInternal, kResourceExhausted, ...) would only recur and are not
/// retryable.
inline bool IsRetryableFailure(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

}  // namespace mjoin

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define MJOIN_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::mjoin::Status _mjoin_status = (expr);         \
    if (!_mjoin_status.ok()) return _mjoin_status;  \
  } while (false)

#endif  // MJOIN_COMMON_STATUS_H_
