#ifndef MJOIN_COMMON_THREAD_ANNOTATIONS_H_
#define MJOIN_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety annotations (the `-Wthread-safety` analysis), as
/// macros that expand to nothing on compilers without the attributes.
/// They turn the locking discipline documented in comments ("guards
/// rng_", "serialized by the scheduler mutex") into declarations the
/// compiler checks: touching a MJOIN_GUARDED_BY member without holding
/// its mutex, or calling a MJOIN_REQUIRES function unlocked, fails a
/// clang build instead of waiting for TSan to catch the interleaving at
/// runtime.
///
/// The analysis only understands annotated lock types, and libstdc++'s
/// std::mutex is not annotated — so mutex-protected code uses the
/// annotated wrappers in common/sync.h (mjoin::Mutex, mjoin::MutexLock,
/// mjoin::CondVar) instead of the std primitives directly.
///
/// Usage mirrors Abseil's thread_annotations.h:
///
///   class MJOIN_CAPABILITY("mutex") Mutex { ... };
///
///   mutable Mutex mutex_;
///   size_t depth_ MJOIN_GUARDED_BY(mutex_) = 0;
///
///   void DrainLocked() MJOIN_REQUIRES(mutex_);   // caller holds mutex_
///   void Post() MJOIN_EXCLUDES(mutex_);          // caller must NOT hold it

#if defined(__clang__) && defined(__has_attribute)
#define MJOIN_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MJOIN_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/// Declares a type to be a capability ("mutex"), lockable by the analysis.
#define MJOIN_CAPABILITY(x) MJOIN_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability.
#define MJOIN_SCOPED_CAPABILITY MJOIN_THREAD_ANNOTATION_(scoped_lockable)

/// The annotated member may only be read or written while holding `x`.
#define MJOIN_GUARDED_BY(x) MJOIN_THREAD_ANNOTATION_(guarded_by(x))

/// The annotated pointer member's *pointee* is protected by `x` (the
/// pointer itself may be read freely).
#define MJOIN_PT_GUARDED_BY(x) MJOIN_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The annotated function may only be called while holding the listed
/// capabilities; it neither acquires nor releases them.
#define MJOIN_REQUIRES(...) \
  MJOIN_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// The annotated function may only be called while NOT holding the listed
/// capabilities (guards against self-deadlock on re-entry).
#define MJOIN_EXCLUDES(...) \
  MJOIN_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// The annotated function acquires / releases the listed capabilities.
#define MJOIN_ACQUIRE(...) \
  MJOIN_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define MJOIN_RELEASE(...) \
  MJOIN_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define MJOIN_TRY_ACQUIRE(...) \
  MJOIN_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// The annotated function returns a reference to the given capability
/// (lets accessors expose a member mutex to the analysis).
#define MJOIN_RETURN_CAPABILITY(x) MJOIN_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch for code the analysis cannot follow (e.g. the
/// address-ordered double lock in Histogram::Merge). Every use carries a
/// comment explaining why the discipline holds anyway.
#define MJOIN_NO_THREAD_SAFETY_ANALYSIS \
  MJOIN_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // MJOIN_COMMON_THREAD_ANNOTATIONS_H_
