#ifndef MJOIN_COMMON_TABLE_PRINTER_H_
#define MJOIN_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace mjoin {

/// Renders rows of strings as an aligned ASCII table. Used by the benchmark
/// harnesses to print the paper's tables and figure series.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Inserts a horizontal separator line before the next row.
  void AddSeparator();

  /// Renders the whole table, including a header separator.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

}  // namespace mjoin

#endif  // MJOIN_COMMON_TABLE_PRINTER_H_
