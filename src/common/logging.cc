#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mjoin {

namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

// Strips the leading directories so log lines stay short.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash == nullptr ? path : slash + 1;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() {
  return g_log_level.load(std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel() || level_ == LogLevel::kFatal) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal_logging

}  // namespace mjoin
