#include "common/string_util.h"

#include <cstdint>
#include <cstdio>

namespace mjoin {

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string PadRight(std::string_view text, size_t width) {
  std::string out(text.substr(0, width));
  out.resize(width, ' ');
  return out;
}

std::string PadLeft(std::string_view text, size_t width) {
  if (text.size() >= width) return std::string(text);
  std::string out(width - text.size(), ' ');
  out += text;
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < sizeof(kUnits) / sizeof(kUnits[0])) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrCat(bytes, " B");
  return StrCat(FormatDouble(value, 1), " ", kUnits[unit]);
}

}  // namespace mjoin
