#ifndef MJOIN_COMMON_LOGGING_H_
#define MJOIN_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace mjoin {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

namespace internal_logging {

/// Collects a log message via operator<< and emits it (to stderr) on
/// destruction. kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Turns a LogMessage reference into void so that a CHECK macro can be the
/// else-branch of a ternary operator. operator& binds more loosely than
/// operator<<, so the whole streaming chain is evaluated first.
class Voidify {
 public:
  void operator&(LogMessage&) {}
};

}  // namespace internal_logging

/// Minimum level that is actually emitted; default kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

}  // namespace mjoin

#define MJOIN_LOG(level)                                                  \
  ::mjoin::internal_logging::LogMessage(::mjoin::LogLevel::k##level,      \
                                        __FILE__, __LINE__)

/// CHECK-style assertion: aborts with the streamed message when `cond` is
/// false. Active in all build types; hot paths should use MJOIN_DCHECK.
#define MJOIN_CHECK(cond)                                                 \
  (cond) ? (void)0                                                        \
         : ::mjoin::internal_logging::Voidify() &                         \
               (::mjoin::internal_logging::LogMessage(                    \
                    ::mjoin::LogLevel::kFatal, __FILE__, __LINE__)        \
                << "Check failed: " #cond " ")

#define MJOIN_CHECK_OK(expr)                                     \
  do {                                                           \
    const ::mjoin::Status& _mjoin_st = (expr);                   \
    MJOIN_CHECK(_mjoin_st.ok()) << _mjoin_st.ToString();         \
  } while (false)

#ifdef NDEBUG
/// Debug-only check: compiled out in release builds, but the condition
/// stays syntactically referenced to avoid unused-variable warnings.
#define MJOIN_DCHECK(cond) MJOIN_CHECK(true || (cond))
#else
#define MJOIN_DCHECK(cond) MJOIN_CHECK(cond)
#endif

#endif  // MJOIN_COMMON_LOGGING_H_
