#ifndef MJOIN_COMMON_STATUSOR_H_
#define MJOIN_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace mjoin {

/// StatusOr<T> holds either an OK status plus a value of type T, or a
/// non-OK status. It is the return type of fallible functions that produce
/// a value (exceptions are not used in this codebase).
///
/// [[nodiscard]] like Status: ignoring a StatusOr return silently drops
/// both the value and the error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit construction from a value is intentional: `return value;`.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit construction from a non-OK status is intentional:
  /// `return Status::InvalidArgument(...);`.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    MJOIN_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Aborts otherwise.
  const T& value() const& {
    MJOIN_CHECK(ok()) << "value() on non-OK StatusOr: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    MJOIN_CHECK(ok()) << "value() on non-OK StatusOr: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    MJOIN_CHECK(ok()) << "value() on non-OK StatusOr: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mjoin

/// Assigns the value of a StatusOr expression to `lhs`, returning the error
/// status from the enclosing function on failure.
#define MJOIN_ASSIGN_OR_RETURN(lhs, expr)                         \
  MJOIN_ASSIGN_OR_RETURN_IMPL_(                                   \
      MJOIN_STATUS_MACROS_CONCAT_(_mjoin_statusor, __LINE__), lhs, expr)

#define MJOIN_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define MJOIN_STATUS_MACROS_CONCAT_(x, y) MJOIN_STATUS_MACROS_CONCAT_IMPL_(x, y)
#define MJOIN_STATUS_MACROS_CONCAT_IMPL_(x, y) x##y

#endif  // MJOIN_COMMON_STATUSOR_H_
