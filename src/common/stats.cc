#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace mjoin {

void StatsAccumulator::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double StatsAccumulator::min() const { return count_ == 0 ? 0 : min_; }
double StatsAccumulator::max() const { return count_ == 0 ? 0 : max_; }
double StatsAccumulator::mean() const { return count_ == 0 ? 0 : mean_; }

double StatsAccumulator::stddev() const {
  if (count_ < 2) return 0;
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

double PercentileTracker::Percentile(double p) const {
  if (values_.empty()) return 0;
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

void PercentileTracker::Merge(const PercentileTracker& other) {
  if (other.total_ == 0) return;
  // Totals add first so the reservoir replacement probability below sees
  // the combined population.
  total_ += other.total_ - other.values_.size();
  for (double v : other.values_) {
    ++total_;
    if (values_.size() < kMaxSamples) {
      values_.push_back(v);
      sorted_ = false;
      continue;
    }
    const uint64_t slot = NextRandom() % total_;
    if (slot < kMaxSamples) {
      values_[static_cast<size_t>(slot)] = v;
      sorted_ = false;
    }
  }
}

}  // namespace mjoin
