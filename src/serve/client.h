#ifndef MJOIN_SERVE_CLIENT_H_
#define MJOIN_SERVE_CLIENT_H_

#include <memory>
#include <string>

#include "common/statusor.h"
#include "serve/serve_protocol.h"

namespace mjoin {

class FrameChannel;

/// Blocking client of one MjoinServer connection. Submits may be
/// pipelined (several Submit() calls before the first Await()); results
/// arrive in whatever order the server finishes them, carrying the
/// submit's client_seq for matching. Not thread-safe — one connection
/// belongs to one thread (open several clients for concurrency).
class ServeClient {
 public:
  /// Connects to the server's AF_UNIX socket.
  [[nodiscard]] static StatusOr<std::unique_ptr<ServeClient>> Connect(
      const std::string& socket_path);

  ~ServeClient();
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Sends one query; returns once the submit frame is fully written.
  [[nodiscard]] Status Submit(const SubmitMsg& msg);

  /// Blocks for the next result frame. `timeout_ms` bounds the whole
  /// wait (negative = forever); expiry returns DeadlineExceeded, a dead
  /// server Unavailable.
  [[nodiscard]] StatusOr<QueryResultMsg> Await(int timeout_ms = -1);

 private:
  explicit ServeClient(std::unique_ptr<FrameChannel> chan);

  std::unique_ptr<FrameChannel> chan_;
};

}  // namespace mjoin

#endif  // MJOIN_SERVE_CLIENT_H_
