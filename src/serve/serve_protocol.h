#ifndef MJOIN_SERVE_SERVE_PROTOCOL_H_
#define MJOIN_SERVE_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "net/wire.h"

namespace mjoin {

/// Which engine backend a submitted query runs on.
enum class ServeBackend : uint8_t {
  /// The in-process ThreadExecutor (shared across queries; warm pools).
  kThread = 0,
  /// The warm process-worker fleet (shared-nothing; persistent workers).
  kProcess = 1,
};

const char* ServeBackendName(ServeBackend backend);

/// Payload of a kSubmit frame: one query, client -> server. `client_seq`
/// is an opaque correlation id — the matching kQueryResult echoes it, and
/// results may return in any order (the server runs queries concurrently),
/// so a pipelining client matches on it rather than on arrival order.
struct SubmitMsg {
  uint64_t client_seq = 0;
  /// Scheduling key: queries queue FIFO per tenant and tenants are served
  /// round-robin, so one chatty tenant cannot starve the rest.
  std::string tenant;
  ServeBackend backend = ServeBackend::kThread;
  /// The parallel plan in textual XRA (the same format the process
  /// backend ships to workers).
  std::string plan_text;
  uint32_t batch_size = 256;
  /// Wall-clock budget from submission, queue time included; 0 = none.
  int64_t deadline_ms = 0;
  /// Per-query operator-memory budget, also the amount admission control
  /// reserves from the server's global budget; 0 = unmetered (admission
  /// charges a minimal placeholder).
  uint64_t memory_budget_bytes = 0;
  bool collect_metrics = false;
};

void EncodeSubmit(const SubmitMsg& msg, std::vector<std::byte>* out);
[[nodiscard]] Status DecodeSubmit(WireReader* reader, SubmitMsg* msg);

/// Payload of a kQueryResult frame: the outcome of one kSubmit,
/// server -> client. Carries the result summary (cardinality + row-hash
/// checksum — the serving layer never materializes rows back to clients)
/// plus enough provenance to benchmark the server from the outside.
struct QueryResultMsg {
  uint64_t client_seq = 0;
  /// StatusCode of the outcome (0 = OK); `message` holds the error text.
  int32_t status_code = 0;
  std::string message;
  uint64_t cardinality = 0;
  uint64_t checksum = 0;
  /// Execution wall time (backend-measured) and time spent queued before
  /// admission, both in seconds.
  double wall_seconds = 0;
  double queue_seconds = 0;
  bool plan_cache_hit = false;
  ServeBackend backend = ServeBackend::kThread;
  /// Process-backend attempts (1 = no retry); 1 for the thread backend.
  uint32_t attempts = 1;
};

void EncodeQueryResult(const QueryResultMsg& msg, std::vector<std::byte>* out);
[[nodiscard]] Status DecodeQueryResult(WireReader* reader,
                                       QueryResultMsg* msg);

}  // namespace mjoin

#endif  // MJOIN_SERVE_SERVE_PROTOCOL_H_
