#include "serve/server.h"

#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/memory_budget.h"
#include "common/sync.h"
#include "engine/process_executor.h"
#include "engine/thread_executor.h"
#include "net/channel.h"

namespace mjoin {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// Every serving-layer clock read funnels through here: timestamps are
/// per-query (enqueue, admission, completion), never per batch.
SteadyClock::time_point Now() {
  return SteadyClock::now();  // lint:allow-clock per-query serving timestamps
}

double Seconds(SteadyClock::duration d) {
  return std::chrono::duration<double>(d).count();
}

/// One admitted-or-queued query, as it travels from the IO thread through
/// the scheduler to an exec thread.
struct QueryTask {
  uint64_t conn_id = 0;
  SubmitMsg submit;
  SteadyClock::time_point enqueued;
  /// Absolute deadline derived from SubmitMsg::deadline_ms at receipt.
  std::optional<SteadyClock::time_point> deadline;
  /// The owning connection's token — cancelled by the IO thread when the
  /// client disconnects, aborting this query wherever it is.
  CancellationToken cancel;
};

/// A finished query on its way back to the IO thread.
struct ResultEnvelope {
  uint64_t conn_id = 0;
  QueryResultMsg msg;
};

/// FIFO-per-tenant fair queue: each tenant's submits run in order, and
/// tenants with pending work are served round-robin, so one tenant
/// flooding the server cannot starve another's single query.
class FairScheduler {
 public:
  void Push(QueryTask task) {
    MutexLock lock(&mu_);
    std::deque<QueryTask>& queue = queues_[task.submit.tenant];
    if (queue.empty()) ring_.push_back(task.submit.tenant);
    queue.push_back(std::move(task));
    cv_.NotifyOne();
  }

  /// Blocks for the next task; false once the scheduler is closed and
  /// drained.
  bool Pop(QueryTask* out) {
    MutexLock lock(&mu_);
    while (ring_.empty() && !closed_) cv_.Wait(mu_);
    if (ring_.empty()) return false;
    const std::string tenant = std::move(ring_.front());
    ring_.pop_front();
    auto it = queues_.find(tenant);
    *out = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) {
      queues_.erase(it);
    } else {
      ring_.push_back(tenant);
    }
    return true;
  }

  void Close() {
    MutexLock lock(&mu_);
    closed_ = true;
    cv_.NotifyAll();
  }

  /// Empties every queue (shutdown: the caller fails these Unavailable).
  std::vector<QueryTask> DrainAll() {
    MutexLock lock(&mu_);
    std::vector<QueryTask> drained;
    for (const std::string& tenant : ring_) {
      auto it = queues_.find(tenant);
      for (QueryTask& task : it->second) drained.push_back(std::move(task));
    }
    queues_.clear();
    ring_.clear();
    return drained;
  }

 private:
  Mutex mu_;
  CondVar cv_;
  std::map<std::string, std::deque<QueryTask>> queues_ MJOIN_GUARDED_BY(mu_);
  /// Tenants with a nonempty queue, in service order.
  std::deque<std::string> ring_ MJOIN_GUARDED_BY(mu_);
  bool closed_ MJOIN_GUARDED_BY(mu_) = false;
};

/// Creates, binds, and listens the server's AF_UNIX socket (nonblocking).
StatusOr<int> BindListenSocket(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path empty or too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  ::unlink(path.c_str());  // a stale file from a crashed server
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal("bind(" + path + "): " + std::strerror(err));
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(path.c_str());
    return Status::Internal(std::string("listen(): ") + std::strerror(err));
  }
  if (Status s = SetNonBlocking(fd); !s.ok()) {
    ::close(fd);
    ::unlink(path.c_str());
    return s;
  }
  return fd;
}

}  // namespace

struct MjoinServer::Impl {
  const Database* database = nullptr;
  MjoinServeOptions options;

  MetricsRegistry metrics;
  std::unique_ptr<PlanCache> plan_cache;

  /// Admission accounting: the sum of running queries' charges.
  std::unique_ptr<MemoryBudget> admission;
  Mutex admission_mu;
  CondVar admission_cv;

  /// Warm executors — both live for the server's whole life, so thread
  /// batch pools and the process fleet stay warm across queries.
  std::unique_ptr<ThreadExecutor> thread_exec;
  std::unique_ptr<WarmProcessFleet> fleet;

  int listen_fd = -1;
  int wake_fd = -1;

  FairScheduler scheduler;

  Mutex results_mu;
  std::deque<ResultEnvelope> results MJOIN_GUARDED_BY(results_mu);

  /// Exec threads observe this to abandon admission waits at shutdown.
  std::atomic<bool> stop{false};
  /// The IO thread outlives `stop` so in-flight results still reach their
  /// clients; it exits only on this flag.
  std::atomic<bool> io_stop{false};
  std::vector<std::thread> exec_threads;
  std::thread io_thread;
  bool shut_down = false;

  void Wake() const {
    const uint64_t one = 1;
    // Best-effort: a full eventfd counter still wakes the IO thread.
    (void)!::write(wake_fd, &one, sizeof(one));
  }

  void PushResult(ResultEnvelope env) {
    {
      MutexLock lock(&results_mu);
      results.push_back(std::move(env));
    }
    Wake();
  }

  QueryResultMsg MakeResult(const QueryTask& task, const Status& status) {
    QueryResultMsg msg;
    msg.client_seq = task.submit.client_seq;
    msg.backend = task.submit.backend;
    msg.status_code = static_cast<int32_t>(status.code());
    msg.message = status.message();
    return msg;
  }

  void ExecLoop();
  Status ExecuteTask(const QueryTask& task, QueryResultMsg* out);
  void IoLoop();
};

// ---------------------------------------------------------------------------
// Query execution.

void MjoinServer::Impl::ExecLoop() {
  QueryTask task;
  while (scheduler.Pop(&task)) {
    QueryResultMsg msg;
    const Status status = ExecuteTask(task, &msg);
    msg.client_seq = task.submit.client_seq;
    msg.backend = task.submit.backend;
    msg.status_code = static_cast<int32_t>(status.code());
    msg.message = status.message();
    msg.queue_seconds = Seconds(Now() - task.enqueued) - msg.wall_seconds;
    if (msg.queue_seconds < 0) msg.queue_seconds = 0;
    metrics.counter(status.ok() ? "serve.queries_ok" : "serve.queries_failed")
        ->Add(1);
    metrics.histogram("serve.queue_seconds")->Observe(msg.queue_seconds);
    if (status.ok()) {
      metrics.histogram("serve.wall_seconds")->Observe(msg.wall_seconds);
    }
    PushResult(ResultEnvelope{task.conn_id, std::move(msg)});
  }
}

Status MjoinServer::Impl::ExecuteTask(const QueryTask& task,
                                      QueryResultMsg* out) {
  const SubmitMsg& q = task.submit;
  if (q.deadline_ms < 0) {
    return Status::InvalidArgument("negative deadline_ms");
  }
  if (q.backend == ServeBackend::kProcess && fleet == nullptr) {
    return Status::FailedPrecondition(
        "process backend disabled on this server");
  }
  if (task.cancel.cancelled()) {
    return Status::Cancelled("client disconnected");
  }

  // Admission: block until the global budget has headroom for this query's
  // charge, bounded by its deadline and woken by both releases and
  // shutdown. The wait is re-armed every 50ms so a disconnect (which only
  // flips the token) is seen promptly.
  const uint64_t charge = q.memory_budget_bytes != 0
                              ? q.memory_budget_bytes
                              : options.default_query_bytes;
  if (!admission->unlimited() && charge > admission->limit()) {
    return Status::ResourceExhausted(
        "query declares a larger budget than the server's whole admission "
        "budget");
  }
  bool stalled = false;
  {
    MutexLock lock(&admission_mu);
    for (;;) {
      if (task.cancel.cancelled()) {
        return Status::Cancelled("client disconnected awaiting admission");
      }
      if (stop.load(std::memory_order_acquire)) {
        return Status::Unavailable("server shutting down");
      }
      if (admission->Reserve(charge).ok()) break;
      stalled = true;
      SteadyClock::time_point wait_until = Now() + std::chrono::milliseconds(50);
      if (task.deadline.has_value()) {
        if (*task.deadline <= Now()) {
          return Status::DeadlineExceeded("deadline expired awaiting admission");
        }
        wait_until = std::min(wait_until, *task.deadline);
      }
      (void)admission_cv.WaitUntil(admission_mu, wait_until);
    }
  }
  if (stalled) metrics.counter("serve.admission_stalls")->Add(1);
  struct AdmissionGuard {
    Impl* impl;
    uint64_t charge;
    ~AdmissionGuard() {
      impl->admission->Release(charge);
      impl->admission_cv.NotifyAll();
    }
  } guard{this, charge};

  // Plan: cache hit re-validates the full text; miss parses and inserts.
  bool cache_hit = false;
  MJOIN_ASSIGN_OR_RETURN(std::shared_ptr<const ParallelPlan> plan,
                         plan_cache->Lookup(q.plan_text, &cache_hit));
  out->plan_cache_hit = cache_hit;

  ThreadExecOptions exec;
  exec.batch_size = q.batch_size != 0 ? q.batch_size : 256;
  exec.memory_budget_bytes = q.memory_budget_bytes;
  exec.cancellation = task.cancel;
  exec.collect_metrics = q.collect_metrics;
  exec.metrics_registry = q.collect_metrics ? &metrics : nullptr;
  if (task.deadline.has_value()) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        *task.deadline - Now());
    if (remaining <= std::chrono::milliseconds(0)) {
      return Status::DeadlineExceeded("deadline expired before execution");
    }
    exec.deadline = remaining;
  }

  if (q.backend == ServeBackend::kThread) {
    MJOIN_ASSIGN_OR_RETURN(ThreadQueryResult result,
                           thread_exec->Execute(*plan, exec));
    out->cardinality = result.result.cardinality;
    out->checksum = result.result.checksum;
    out->wall_seconds = result.wall_seconds;
    out->attempts = 1;
    return Status::OK();
  }

  ProcessExecOptions popts;
  popts.exec = exec;
  // One respawn per query: a fleet poisoned by a crashed worker is rebuilt
  // and the query re-run once before the failure surfaces to the client.
  popts.max_retries = 1;
  MJOIN_ASSIGN_OR_RETURN(ProcessQueryResult result,
                         fleet->Execute(*plan, popts));
  out->cardinality = result.exec.result.cardinality;
  out->checksum = result.exec.result.checksum;
  out->wall_seconds = result.exec.wall_seconds;
  out->attempts = result.proc.attempts;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Connection IO.

namespace {

struct Conn {
  uint64_t id = 0;
  std::unique_ptr<FrameChannel> chan;
  CancellationToken cancel;
};

}  // namespace

void MjoinServer::Impl::IoLoop() {
  std::unordered_map<uint64_t, Conn> conns;
  uint64_t next_conn_id = 1;
  Gauge* connections = metrics.gauge("serve.connections");

  const auto close_conn = [&](uint64_t id) {
    auto it = conns.find(id);
    if (it == conns.end()) return;
    // Aborts the connection's queued and running queries; their results
    // are dropped when they find no connection to deliver to.
    it->second.cancel.Cancel();
    conns.erase(it);
    connections->Add(-1);
  };

  const auto drain_results = [&] {
    std::deque<ResultEnvelope> batch;
    {
      MutexLock lock(&results_mu);
      batch.swap(results);
    }
    for (ResultEnvelope& env : batch) {
      auto it = conns.find(env.conn_id);
      if (it == conns.end()) continue;  // client already gone
      std::vector<std::byte> payload;
      EncodeQueryResult(env.msg, &payload);
      it->second.chan->QueueFrame(FrameType::kQueryResult, payload);
      if (Status s = it->second.chan->Flush(); !s.ok()) close_conn(env.conn_id);
    }
  };

  const auto handle_readable = [&](uint64_t id) {
    auto it = conns.find(id);
    if (it == conns.end()) return;
    FrameChannel* chan = it->second.chan.get();
    bool peer_closed = false;
    if (Status s = chan->ReadAvailable(&peer_closed); !s.ok()) {
      close_conn(id);
      return;
    }
    Frame frame;
    while (conns.count(id) != 0 && chan->NextFrame(&frame)) {
      if (frame.type == FrameType::kBye) {
        close_conn(id);
        return;
      }
      if (frame.type != FrameType::kSubmit) {
        close_conn(id);  // protocol violation
        return;
      }
      SubmitMsg submit;
      WireReader reader(frame.payload);
      if (Status s = DecodeSubmit(&reader, &submit); !s.ok()) {
        close_conn(id);
        return;
      }
      QueryTask task;
      task.conn_id = id;
      task.submit = std::move(submit);
      task.enqueued = Now();
      if (task.submit.deadline_ms > 0) {
        task.deadline = task.enqueued +
                        std::chrono::milliseconds(task.submit.deadline_ms);
      }
      task.cancel = it->second.cancel;
      metrics.counter("serve.submits")->Add(1);
      scheduler.Push(std::move(task));
    }
    if (peer_closed) close_conn(id);
  };

  while (!io_stop.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    std::vector<uint64_t> fd_conn;  // conn id per pollfd; 0 = not a conn
    fds.push_back({listen_fd, POLLIN, 0});
    fd_conn.push_back(0);
    fds.push_back({wake_fd, POLLIN, 0});
    fd_conn.push_back(0);
    for (const auto& [id, conn] : conns) {
      short events = POLLIN;
      if (conn.chan->has_pending_output()) events |= POLLOUT;
      fds.push_back({conn.chan->fd(), events, 0});
      fd_conn.push_back(id);
    }
    if (::poll(fds.data(), fds.size(), 100) < 0 && errno != EINTR) break;

    if ((fds[1].revents & POLLIN) != 0) {
      uint64_t counter = 0;
      (void)!::read(wake_fd, &counter, sizeof(counter));
    }
    if ((fds[0].revents & POLLIN) != 0) {
      for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) break;  // EAGAIN (or a transient accept error): done
        if (Status s = SetNonBlocking(fd); !s.ok()) {
          ::close(fd);
          continue;
        }
        const uint64_t id = next_conn_id++;
        Conn conn;
        conn.id = id;
        conn.chan = std::make_unique<FrameChannel>(
            fd, "client " + std::to_string(id));
        conn.chan->EnableConformance(LinkRole::kServer);
        conns.emplace(id, std::move(conn));
        connections->Add(1);
      }
    }
    for (size_t i = 2; i < fds.size(); ++i) {
      const uint64_t id = fd_conn[i];
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        handle_readable(id);
      }
      auto it = conns.find(id);
      if (it != conns.end() && (fds[i].revents & POLLOUT) != 0) {
        if (Status s = it->second.chan->Flush(); !s.ok()) close_conn(id);
      }
    }
    drain_results();
  }

  // Final drain: deliver whatever the exec threads finished before the
  // stop flag, then drop the connections (closing their descriptors).
  drain_results();
  for (auto& [id, conn] : conns) {
    if (conn.chan->has_pending_output()) (void)conn.chan->Flush();
    conn.cancel.Cancel();
  }
  conns.clear();
}

// ---------------------------------------------------------------------------
// Lifecycle.

StatusOr<std::unique_ptr<MjoinServer>> MjoinServer::Start(
    const Database* database, MjoinServeOptions options) {
  if (database == nullptr) {
    return Status::InvalidArgument("null database");
  }
  if (options.exec_threads == 0) {
    return Status::InvalidArgument("exec_threads must be positive");
  }
  if (options.default_query_bytes == 0) {
    return Status::InvalidArgument("default_query_bytes must be positive");
  }
  // lint:allow-new private constructor; make_unique cannot reach it
  std::unique_ptr<MjoinServer> server(new MjoinServer());
  Impl* impl = server->impl_.get();
  impl->database = database;
  impl->options = std::move(options);
  impl->plan_cache = std::make_unique<PlanCache>(
      impl->options.plan_cache_capacity, impl->options.plan_cache_hash);
  impl->admission =
      std::make_unique<MemoryBudget>(impl->options.admission_budget_bytes);
  impl->thread_exec = std::make_unique<ThreadExecutor>(database);

  // The fleet forks before the listen socket exists, so no worker inherits
  // it. (Later respawns do run with server descriptors open; workers never
  // touch inherited descriptors.)
  if (impl->options.enable_process_backend) {
    MJOIN_ASSIGN_OR_RETURN(impl->fleet, WarmProcessFleet::Spawn(
                                            database, impl->options.fleet));
  }

  MJOIN_ASSIGN_OR_RETURN(impl->listen_fd,
                         BindListenSocket(impl->options.socket_path));
  impl->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (impl->wake_fd < 0) {
    return Status::Internal(std::string("eventfd(): ") + std::strerror(errno));
  }

  for (uint32_t i = 0; i < impl->options.exec_threads; ++i) {
    impl->exec_threads.emplace_back([impl] { impl->ExecLoop(); });
  }
  impl->io_thread = std::thread([impl] { impl->IoLoop(); });
  return server;
}

void MjoinServer::Shutdown() {
  Impl* impl = impl_.get();
  if (impl->shut_down) return;
  impl->shut_down = true;

  // 1. No new work: stop admission waits, close the scheduler, and fail
  //    everything still queued. Running queries drain normally.
  impl->stop.store(true, std::memory_order_release);
  impl->scheduler.Close();
  for (QueryTask& task : impl->scheduler.DrainAll()) {
    impl->PushResult(ResultEnvelope{
        task.conn_id,
        impl->MakeResult(task, Status::Unavailable("server shutting down"))});
  }
  for (std::thread& t : impl->exec_threads) {
    if (t.joinable()) t.join();
  }
  impl->exec_threads.clear();

  // 2. The IO thread flushes those final results, then exits.
  impl->io_stop.store(true, std::memory_order_release);
  if (impl->wake_fd >= 0) impl->Wake();
  if (impl->io_thread.joinable()) impl->io_thread.join();

  // 3. Tear down the endpoint and the warm fleet.
  if (impl->listen_fd >= 0) {
    ::close(impl->listen_fd);
    impl->listen_fd = -1;
    ::unlink(impl->options.socket_path.c_str());
  }
  if (impl->wake_fd >= 0) {
    ::close(impl->wake_fd);
    impl->wake_fd = -1;
  }
  impl->fleet.reset();
}

MjoinServer::MjoinServer() : impl_(std::make_unique<Impl>()) {}

MjoinServer::~MjoinServer() { Shutdown(); }

const std::string& MjoinServer::socket_path() const {
  return impl_->options.socket_path;
}

MetricsRegistry* MjoinServer::metrics() { return &impl_->metrics; }

PlanCacheStats MjoinServer::plan_cache_stats() const {
  return impl_->plan_cache->stats();
}

WarmProcessFleet* MjoinServer::fleet() { return impl_->fleet.get(); }

}  // namespace mjoin
