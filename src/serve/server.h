#ifndef MJOIN_SERVE_SERVER_H_
#define MJOIN_SERVE_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/statusor.h"
#include "engine/warm_fleet.h"
#include "serve/plan_cache.h"
#include "serve/serve_protocol.h"

namespace mjoin {

class Database;

/// Configuration of one MjoinServer.
struct MjoinServeOptions {
  /// AF_UNIX socket path to listen on. A stale file at the path is
  /// unlinked before bind; the path is unlinked again at shutdown.
  std::string socket_path;
  /// Query-execution threads. Each runs one admitted query at a time, so
  /// this is the server's concurrency level for thread-backend queries
  /// (process-backend queries additionally serialize on the warm fleet).
  uint32_t exec_threads = 2;
  /// Global admission budget: the sum of admitted queries' declared
  /// memory budgets never exceeds this. Queries wait (FIFO per tenant)
  /// for headroom; a query that cannot ever fit is rejected outright.
  uint64_t admission_budget_bytes = 1ull << 30;
  /// Admission charge for a query that declares no budget of its own.
  uint64_t default_query_bytes = 64ull << 20;
  size_t plan_cache_capacity = 64;
  /// Spawn a warm process-worker fleet at startup and accept
  /// ServeBackend::kProcess submits. Off = process submits are rejected
  /// with FailedPrecondition (the thread backend still serves).
  bool enable_process_backend = true;
  /// Shape of the warm fleet (ignored unless enable_process_backend).
  WarmFleetOptions fleet;
  /// Test hook: overrides the plan cache's hash function (see PlanCache).
  std::function<uint64_t(const std::string&)> plan_cache_hash;
};

/// A long-lived multi-tenant query service over the frame protocol: warm
/// executors (a shared ThreadExecutor with persistent batch pools, a
/// pre-forked WarmProcessFleet), a plan cache, admission control against a
/// global memory budget, per-query deadlines and disconnect cancellation,
/// and FIFO-per-tenant fair scheduling.
///
/// Wire contract: clients connect to the AF_UNIX socket and send kSubmit
/// frames (SubmitMsg); the server answers each with one kQueryResult
/// frame (QueryResultMsg) carrying the submit's client_seq. A connection
/// may pipeline any number of submits; results return as queries finish,
/// in any order. Closing the connection cancels its queued and running
/// queries.
///
/// Threading: one IO thread owns every connection (accept, frame
/// reassembly, result writes); `exec_threads` workers pull admitted
/// queries from the fair scheduler and run them on the warm executors.
/// Shutdown() (also run by the destructor) drains running queries, fails
/// queued ones with Unavailable, parks and reaps the fleet, and unlinks
/// the socket — nothing outlives the object.
class MjoinServer {
 public:
  /// Spawns the fleet (before the listen socket, so workers never inherit
  /// it), binds the socket, and starts the IO and exec threads.
  [[nodiscard]] static StatusOr<std::unique_ptr<MjoinServer>> Start(
      const Database* database, MjoinServeOptions options);

  ~MjoinServer();
  MjoinServer(const MjoinServer&) = delete;
  MjoinServer& operator=(const MjoinServer&) = delete;

  /// Idempotent graceful stop; see the class comment for the order.
  void Shutdown();

  const std::string& socket_path() const;

  /// The server's own metrics ("serve." family plus whatever the backends
  /// publish). Live — counters move while queries run.
  MetricsRegistry* metrics();

  PlanCacheStats plan_cache_stats() const;

  /// The warm fleet (nullptr when the process backend is disabled). Test
  /// hook — used to assert respawn behavior under chaos.
  WarmProcessFleet* fleet();

 private:
  MjoinServer();

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mjoin

#endif  // MJOIN_SERVE_SERVER_H_
