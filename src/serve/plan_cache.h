#ifndef MJOIN_SERVE_PLAN_CACHE_H_
#define MJOIN_SERVE_PLAN_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/statusor.h"
#include "common/sync.h"
#include "xra/plan.h"

namespace mjoin {

/// Cumulative cache traffic (monotonic; read under the cache's own lock).
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  /// Lookups whose 64-bit key matched a resident entry whose full plan
  /// text did not — a genuine hash collision, served as a miss. A nonzero
  /// count is expected to be astronomically rare in production; the
  /// counter exists so a collision can never be silent.
  uint64_t collisions = 0;
  uint64_t evictions = 0;
};

/// LRU cache of parsed plans keyed by a 64-bit hash of their textual XRA.
/// The hash is only a locator: every hit re-validates by comparing the
/// stored plan text byte-for-byte against the query's, so two distinct
/// plans whose texts collide under the hash can never alias each other —
/// the collision is counted and handled as a miss (the colliding entry
/// stays; first-come keeps the slot until evicted by LRU).
///
/// Thread-safe. Entries are immutable and shared: a returned plan stays
/// valid after eviction for as long as the caller holds the shared_ptr.
class PlanCache {
 public:
  /// `hash` is injectable for tests (forcing collisions deterministically);
  /// the default is FnvHash64 over the plan text. `capacity` bounds
  /// resident entries; 0 disables caching entirely (every Lookup parses).
  explicit PlanCache(size_t capacity,
                     std::function<uint64_t(const std::string&)> hash = {});

  /// The parsed plan for `plan_text`, from cache or freshly parsed (and
  /// inserted). `was_hit`, when non-null, reports cache provenance.
  /// Parse failures are returned verbatim and never cached.
  [[nodiscard]] StatusOr<std::shared_ptr<const ParallelPlan>> Lookup(
      const std::string& plan_text, bool* was_hit = nullptr);

  PlanCacheStats stats() const;
  size_t size() const;

 private:
  struct Entry {
    uint64_t key = 0;
    std::string plan_text;
    std::shared_ptr<const ParallelPlan> plan;
  };

  const size_t capacity_;
  const std::function<uint64_t(const std::string&)> hash_;

  mutable Mutex mutex_;
  /// Most-recently-used first; lookups splice their entry to the front.
  std::list<Entry> lru_ MJOIN_GUARDED_BY(mutex_);
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_
      MJOIN_GUARDED_BY(mutex_);
  PlanCacheStats stats_ MJOIN_GUARDED_BY(mutex_);
};

}  // namespace mjoin

#endif  // MJOIN_SERVE_PLAN_CACHE_H_
