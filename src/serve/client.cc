#include "serve/client.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "net/channel.h"

namespace mjoin {

namespace {

/// Counterpart of WaitReadable for a stalled write: blocks until `fd`
/// accepts bytes or `timeout_ms` elapses (false on timeout).
StatusOr<bool> WaitWritable(int fd, int timeout_ms) {
  pollfd pfd{fd, POLLOUT, 0};
  for (;;) {
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("poll(): ") + std::strerror(errno));
    }
    return n > 0;
  }
}

}  // namespace

StatusOr<std::unique_ptr<ServeClient>> ServeClient::Connect(
    const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path empty or too long: " +
                                   socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Status::Unavailable("connect(" + socket_path +
                               "): " + std::strerror(err));
  }
  if (Status s = SetNonBlocking(fd); !s.ok()) {
    ::close(fd);
    return s;
  }
  auto chan = std::make_unique<FrameChannel>(fd, "server");
  chan->EnableConformance(LinkRole::kClient);
  return std::unique_ptr<ServeClient>(new ServeClient(  // lint:allow-new private ctor
      std::move(chan)));
}

ServeClient::ServeClient(std::unique_ptr<FrameChannel> chan)
    : chan_(std::move(chan)) {}

ServeClient::~ServeClient() = default;

Status ServeClient::Submit(const SubmitMsg& msg) {
  std::vector<std::byte> payload;
  EncodeSubmit(msg, &payload);
  chan_->QueueFrame(FrameType::kSubmit, payload);
  while (chan_->has_pending_output()) {
    MJOIN_RETURN_IF_ERROR(chan_->Flush());
    if (!chan_->has_pending_output()) break;
    MJOIN_ASSIGN_OR_RETURN(const bool writable_ready,
                           WaitWritable(chan_->fd(), 5000));
    if (!writable_ready) {
      return Status::DeadlineExceeded("submit write stalled for 5s");
    }
  }
  return Status::OK();
}

StatusOr<QueryResultMsg> ServeClient::Await(int timeout_ms) {
  const auto start = std::chrono::steady_clock::now();  // lint:allow-clock client-side await timeout
  for (;;) {
    Frame frame;
    while (chan_->NextFrame(&frame)) {
      if (frame.type != FrameType::kQueryResult) {
        return Status::InvalidArgument("unexpected frame from server: type " +
                                       std::to_string(int(frame.type)));
      }
      QueryResultMsg msg;
      WireReader reader(frame.payload);
      MJOIN_RETURN_IF_ERROR(DecodeQueryResult(&reader, &msg));
      return msg;
    }
    int remaining_ms = -1;
    if (timeout_ms >= 0) {
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start);  // lint:allow-clock client-side await timeout
      remaining_ms = timeout_ms - static_cast<int>(elapsed.count());
      if (remaining_ms <= 0) {
        return Status::DeadlineExceeded("no result within timeout");
      }
    }
    MJOIN_ASSIGN_OR_RETURN(const bool readable,
                           WaitReadable(chan_->fd(), remaining_ms));
    if (!readable) return Status::DeadlineExceeded("no result within timeout");
    bool peer_closed = false;
    MJOIN_RETURN_IF_ERROR(chan_->ReadAvailable(&peer_closed));
    if (peer_closed && !chan_->has_frames()) {
      return Status::Unavailable("server closed the connection");
    }
  }
}

}  // namespace mjoin
