#include "serve/plan_cache.h"

#include <utility>

#include "engine/process_protocol.h"
#include "xra/text.h"

namespace mjoin {

PlanCache::PlanCache(size_t capacity,
                     std::function<uint64_t(const std::string&)> hash)
    : capacity_(capacity),
      hash_(hash ? std::move(hash)
                 : [](const std::string& text) { return FnvHash64(text); }) {}

StatusOr<std::shared_ptr<const ParallelPlan>> PlanCache::Lookup(
    const std::string& plan_text, bool* was_hit) {
  if (was_hit != nullptr) *was_hit = false;
  const uint64_t key = hash_(plan_text);
  {
    MutexLock lock(&mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      if (it->second->plan_text == plan_text) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second);
        if (was_hit != nullptr) *was_hit = true;
        return it->second->plan;
      }
      // Same 64-bit key, different plan text: a real collision. Served as
      // a miss; the resident entry keeps the slot (so the colliding pair
      // ping-pongs on the counter, never on each other's plans).
      ++stats_.collisions;
    }
    ++stats_.misses;
  }

  // Parse outside the lock — it is the expensive part and needs no cache
  // state. Two racing parses of the same text both succeed; the second
  // insert below finds the slot taken and simply uses its own copy.
  MJOIN_ASSIGN_OR_RETURN(ParallelPlan parsed, ParsePlan(plan_text));
  auto plan = std::make_shared<const ParallelPlan>(std::move(parsed));

  if (capacity_ == 0) return plan;
  MutexLock lock(&mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Raced with another inserter (or collides with a resident entry):
    // leave the resident entry alone.
    return plan;
  }
  lru_.push_front(Entry{key, plan_text, plan});
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    ++stats_.evictions;
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return plan;
}

PlanCacheStats PlanCache::stats() const {
  MutexLock lock(&mutex_);
  return stats_;
}

size_t PlanCache::size() const {
  MutexLock lock(&mutex_);
  return lru_.size();
}

}  // namespace mjoin
