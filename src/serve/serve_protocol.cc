#include "serve/serve_protocol.h"

namespace mjoin {

namespace {

void PutBoolByte(std::vector<std::byte>* out, bool v) {
  PutU8(out, v ? 1 : 0);
}

Status ReadBoolByte(WireReader* reader, bool* v) {
  uint8_t byte = 0;
  MJOIN_RETURN_IF_ERROR(reader->ReadU8(&byte));
  if (byte > 1) return Status::InvalidArgument("bad bool byte");
  *v = byte != 0;
  return Status::OK();
}

Status ReadBackend(WireReader* reader, ServeBackend* backend) {
  uint8_t byte = 0;
  MJOIN_RETURN_IF_ERROR(reader->ReadU8(&byte));
  if (byte > static_cast<uint8_t>(ServeBackend::kProcess)) {
    return Status::InvalidArgument("unknown serve backend");
  }
  *backend = static_cast<ServeBackend>(byte);
  return Status::OK();
}

}  // namespace

const char* ServeBackendName(ServeBackend backend) {
  switch (backend) {
    case ServeBackend::kThread:
      return "thread";
    case ServeBackend::kProcess:
      return "process";
  }
  return "unknown";
}

void EncodeSubmit(const SubmitMsg& msg, std::vector<std::byte>* out) {
  PutU64(out, msg.client_seq);
  PutString(out, msg.tenant);
  PutU8(out, static_cast<uint8_t>(msg.backend));
  PutString(out, msg.plan_text);
  PutU32(out, msg.batch_size);
  PutI64(out, msg.deadline_ms);
  PutU64(out, msg.memory_budget_bytes);
  PutBoolByte(out, msg.collect_metrics);
}

Status DecodeSubmit(WireReader* reader, SubmitMsg* msg) {
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&msg->client_seq));
  MJOIN_RETURN_IF_ERROR(reader->ReadString(&msg->tenant));
  MJOIN_RETURN_IF_ERROR(ReadBackend(reader, &msg->backend));
  MJOIN_RETURN_IF_ERROR(reader->ReadString(&msg->plan_text));
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&msg->batch_size));
  MJOIN_RETURN_IF_ERROR(reader->ReadI64(&msg->deadline_ms));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&msg->memory_budget_bytes));
  MJOIN_RETURN_IF_ERROR(ReadBoolByte(reader, &msg->collect_metrics));
  if (!reader->exhausted()) {
    return Status::InvalidArgument("trailing bytes after submit payload");
  }
  return Status::OK();
}

void EncodeQueryResult(const QueryResultMsg& msg,
                       std::vector<std::byte>* out) {
  PutU64(out, msg.client_seq);
  PutI32(out, msg.status_code);
  PutString(out, msg.message);
  PutU64(out, msg.cardinality);
  PutU64(out, msg.checksum);
  PutF64(out, msg.wall_seconds);
  PutF64(out, msg.queue_seconds);
  PutBoolByte(out, msg.plan_cache_hit);
  PutU8(out, static_cast<uint8_t>(msg.backend));
  PutU32(out, msg.attempts);
}

Status DecodeQueryResult(WireReader* reader, QueryResultMsg* msg) {
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&msg->client_seq));
  MJOIN_RETURN_IF_ERROR(reader->ReadI32(&msg->status_code));
  MJOIN_RETURN_IF_ERROR(reader->ReadString(&msg->message));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&msg->cardinality));
  MJOIN_RETURN_IF_ERROR(reader->ReadU64(&msg->checksum));
  MJOIN_RETURN_IF_ERROR(reader->ReadF64(&msg->wall_seconds));
  MJOIN_RETURN_IF_ERROR(reader->ReadF64(&msg->queue_seconds));
  MJOIN_RETURN_IF_ERROR(ReadBoolByte(reader, &msg->plan_cache_hit));
  MJOIN_RETURN_IF_ERROR(ReadBackend(reader, &msg->backend));
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&msg->attempts));
  if (!reader->exhausted()) {
    return Status::InvalidArgument("trailing bytes after result payload");
  }
  return Status::OK();
}

}  // namespace mjoin
