#include "skew/defense.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace mjoin {

const char* SkewDefenseModeName(SkewDefenseMode mode) {
  switch (mode) {
    case SkewDefenseMode::kOff:
      return "off";
    case SkewDefenseMode::kOn:
      return "on";
    case SkewDefenseMode::kAuto:
      return "auto";
  }
  return "unknown";
}

StatusOr<SkewDefenseMode> ParseSkewDefenseMode(const std::string& text) {
  if (text == "off") return SkewDefenseMode::kOff;
  if (text == "on") return SkewDefenseMode::kOn;
  if (text == "auto") return SkewDefenseMode::kAuto;
  return Status::InvalidArgument(
      StrCat("unknown skew defense mode '", text, "' (valid: off, on, auto)"));
}

std::vector<int> DefendedJoinOps(const ParallelPlan& plan) {
  std::vector<int> out;
  for (const XraOp& op : plan.ops) {
    if (op.kind != XraOpKind::kSimpleHashJoin) continue;
    const XraInput& probe = op.inputs[1];
    if (probe.producer < 0 || probe.routing != Routing::kHashSplit) continue;
    out.push_back(op.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

/// The hot threshold in rows, given the row total the caller knows about.
/// Used with the instance-local total on workers (a lower bound on the
/// global threshold, since no instance holds more rows than the join) and
/// with the true total in the merger.
uint64_t HotThreshold(uint64_t total_rows, uint32_t num_instances,
                      const SkewDefenseOptions& options) {
  double fair = static_cast<double>(total_rows) / num_instances;
  auto scaled = static_cast<uint64_t>(std::ceil(options.hot_fraction * fair));
  return std::max<uint64_t>(scaled, options.min_hot_count);
}

}  // namespace

SkewJoinReport BuildSkewReport(const JoinHashTable& table, int op,
                               uint32_t instance, uint32_t num_instances,
                               const SkewDefenseOptions& options) {
  SkewJoinReport report;
  report.op = op;
  report.instance = instance;
  report.build_rows = table.size();
  report.tuple_size = static_cast<uint32_t>(table.schema().tuple_size());

  BloomFilter bloom(options.bloom_bits);
  SpaceSavingSketch sketch(options.sketch_capacity);
  const size_t key_column = table.key_column();
  table.ForEachRow([&](TupleRef row) {
    int32_t key = row.GetInt32(key_column);
    bloom.Insert(key);
    sketch.Observe(key);
  });
  report.bloom = std::move(bloom);

  const uint64_t threshold =
      HotThreshold(report.build_rows, num_instances, options);
  const size_t tuple_size = table.schema().tuple_size();
  size_t row_bytes_used = 0;
  for (const SpaceSavingSketch::Entry& entry : sketch.Entries()) {
    if (entry.count < threshold) break;  // entries are count-descending
    SkewCandidate candidate;
    candidate.key = entry.key;
    candidate.count = entry.count;
    // Gather the candidate's build rows while staying under the byte cap;
    // over-cap candidates are reported count-only (they keep their exact
    // sketch upper bound and stay pinned to their owner).
    std::vector<std::byte> rows;
    size_t matches = table.Probe(entry.key, [&](TupleRef row) {
      rows.insert(rows.end(), row.data(), row.data() + tuple_size);
    });
    if (row_bytes_used + rows.size() <= options.max_hot_row_bytes) {
      row_bytes_used += rows.size();
      candidate.count = matches;  // exact now that every row was visited
      candidate.rows_included = true;
      candidate.rows = std::move(rows);
    }
    report.candidates.push_back(std::move(candidate));
  }
  return report;
}

SkewReportMerger::SkewReportMerger(int op, uint32_t num_instances,
                                   const SkewDefenseOptions& options)
    : op_(op), num_instances_(num_instances), options_(options) {
  MJOIN_CHECK(num_instances > 0);
  per_instance_rows_.assign(num_instances, 0);
}

void SkewReportMerger::Add(SkewJoinReport report) {
  MJOIN_CHECK(report.op == op_) << "report for op " << report.op
                                << " fed to merger of op " << op_;
  MJOIN_CHECK(report.instance < num_instances_);
  MJOIN_CHECK(received_ < num_instances_);
  ++received_;
  per_instance_rows_[report.instance] += report.build_rows;
  if (report.tuple_size > tuple_size_) tuple_size_ = report.tuple_size;
  bloom_.Union(report.bloom);
  for (SkewCandidate& candidate : report.candidates) {
    candidates_.push_back(std::move(candidate));
  }
}

SkewDirective SkewReportMerger::Finish() {
  MJOIN_CHECK(complete());
  SkewDirective directive;
  directive.op = op_;
  directive.tuple_size = tuple_size_;
  directive.bloom = std::move(bloom_);

  uint64_t total = 0;
  uint64_t max_rows = 0;
  for (uint64_t rows : per_instance_rows_) {
    total += rows;
    max_rows = std::max(max_rows, rows);
  }
  directive.total_build_rows = total;
  double mean = static_cast<double>(total) / num_instances_;
  directive.imbalance = mean > 0 ? static_cast<double>(max_rows) / mean : 1.0;

  const bool repartition_allowed =
      options_.mode == SkewDefenseMode::kOn ||
      (options_.mode == SkewDefenseMode::kAuto &&
       directive.imbalance >= options_.auto_imbalance_threshold);
  if (!repartition_allowed) return directive;

  const uint64_t threshold = HotThreshold(total, num_instances_, options_);
  // Deterministic hot-key order regardless of report arrival order.
  std::sort(candidates_.begin(), candidates_.end(),
            [](const SkewCandidate& a, const SkewCandidate& b) {
              return a.key < b.key;
            });
  for (SkewCandidate& candidate : candidates_) {
    if (candidate.count < threshold || !candidate.rows_included) continue;
    // A key lives on exactly one build instance, so duplicates across
    // reports should not occur; fold them defensively anyway.
    if (!directive.hot_keys.empty() &&
        directive.hot_keys.back() == candidate.key) {
      directive.hot_rows.insert(directive.hot_rows.end(),
                                candidate.rows.begin(), candidate.rows.end());
      continue;
    }
    directive.hot_keys.push_back(candidate.key);
    directive.hot_rows.insert(directive.hot_rows.end(),
                              candidate.rows.begin(), candidate.rows.end());
  }
  directive.repartition = !directive.hot_keys.empty();
  return directive;
}

uint64_t ApplySkewDirective(const SkewDirective& directive,
                            JoinHashTable* table) {
  if (!directive.repartition || directive.hot_rows.empty()) return 0;
  MJOIN_CHECK(directive.tuple_size == table->schema().tuple_size())
      << "directive rows for tuple size " << directive.tuple_size
      << " applied to a table of tuple size " << table->schema().tuple_size();
  // Keys with rows already present locally belong to this instance — it
  // owns the originals, so inserting the replicas would double its
  // matches.
  std::unordered_set<int32_t> absent;
  for (int32_t key : directive.hot_keys) {
    if (table->Probe(key, [](TupleRef) {}) == 0) absent.insert(key);
  }
  if (absent.empty()) return 0;
  const size_t tuple_size = directive.tuple_size;
  const size_t key_column = table->key_column();
  const Schema* schema = &table->schema();
  uint64_t inserted = 0;
  for (size_t off = 0; off + tuple_size <= directive.hot_rows.size();
       off += tuple_size) {
    const std::byte* row = directive.hot_rows.data() + off;
    if (absent.count(TupleRef(row, schema).GetInt32(key_column)) == 0) {
      continue;
    }
    table->Insert(row);
    ++inserted;
  }
  return inserted;
}

SkewEmitDefense::SkewEmitDefense(const SkewDirective& directive)
    : bloom_(directive.bloom) {
  if (directive.repartition) {
    hot_.insert(directive.hot_keys.begin(), directive.hot_keys.end());
  }
}

EmitDefense::Verdict SkewEmitDefense::Classify(int32_t split_value) {
  if (!bloom_.MayContain(split_value)) return Verdict::kDrop;
  if (!hot_.empty() && hot_.count(split_value) != 0) {
    return Verdict::kRepartition;
  }
  return Verdict::kPass;
}

}  // namespace mjoin
