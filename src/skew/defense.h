#ifndef MJOIN_SKEW_DEFENSE_H_
#define MJOIN_SKEW_DEFENSE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/statusor.h"
#include "exec/emit.h"
#include "exec/hash_table.h"
#include "skew/bloom.h"
#include "skew/sketch.h"
#include "xra/plan.h"

namespace mjoin {

/// When the skew defense runs.
enum class SkewDefenseMode : uint8_t {
  /// No sketching, no reports, no directives — the pre-defense engine.
  kOff = 0,
  /// Bloom predicate transfer always on; every detected hot key is
  /// repartitioned.
  kOn = 1,
  /// Bloom predicate transfer always on; repartitioning engages only when
  /// the measured build-row imbalance across a join's instances exceeds
  /// SkewDefenseOptions::auto_imbalance_threshold.
  kAuto = 2,
};

const char* SkewDefenseModeName(SkewDefenseMode mode);

/// Parses "off" / "on" / "auto"; anything else is InvalidArgument naming
/// the valid values (callers surface this as a usage error).
StatusOr<SkewDefenseMode> ParseSkewDefenseMode(const std::string& text);

/// Tuning knobs for the defense, shipped to workers in the PlanEnvelope so
/// both ends agree on which joins defer their build milestone.
struct SkewDefenseOptions {
  SkewDefenseMode mode = SkewDefenseMode::kOff;
  /// Size of each per-instance build-key Bloom filter. Fixed across
  /// instances so the coordinator can OR them; rounded up to a power of
  /// two.
  uint32_t bloom_bits = 1u << 20;
  /// SpaceSaving candidate slots per build instance.
  uint32_t sketch_capacity = 64;
  /// A key is hot when its build count is at least this fraction of a
  /// fair per-instance share (total_build_rows / instances). 0.5 means
  /// "half a worker's fair share concentrated in one key".
  double hot_fraction = 0.5;
  /// Hot keys below this absolute count are ignored — repartitioning a
  /// tiny key costs more in replication than it saves in balance.
  uint64_t min_hot_count = 256;
  /// kAuto engages repartitioning only when max/mean per-instance build
  /// rows is at least this.
  double auto_imbalance_threshold = 1.2;
  /// Byte cap on the candidate build rows one instance ships in its
  /// report; candidates beyond the cap are reported count-only and can
  /// not be repartitioned (they stay on their owner, which is always
  /// correct).
  size_t max_hot_row_bytes = 8u << 20;

  bool enabled() const { return mode != SkewDefenseMode::kOff; }
};

/// Joins the defense applies to: two-phase hash joins whose probe input
/// is a hash-split stream (the producer's EmitWriter routes each row by
/// its join-key value, so a defense hook there can drop or re-route rows
/// before they are serialized). Colocated probe edges are pre-partitioned
/// scans with no routing decision to override, and pipelining joins have
/// no build barrier to report at — both stay undefended. Sorted by op id.
/// Both the coordinator and every worker compute this from the same plan,
/// so no extra wire state is needed to agree on who defers.
std::vector<int> DefendedJoinOps(const ParallelPlan& plan);

/// One heavy-hitter candidate from a build instance's sketch.
struct SkewCandidate {
  int32_t key = 0;
  /// SpaceSaving count — an upper bound on the true build-side count.
  uint64_t count = 0;
  /// True when `rows` carries every build row with this key. Count-only
  /// candidates (over the row-byte cap) cannot be repartitioned.
  bool rows_included = false;
  /// The candidate's build rows, tuple_size-byte records back to back.
  std::vector<std::byte> rows;
};

/// One defended join instance's build-side summary, produced after the
/// instance's build input finished and before its build milestone fires.
struct SkewJoinReport {
  int op = -1;
  uint32_t instance = 0;
  uint64_t build_rows = 0;
  uint32_t tuple_size = 0;
  std::vector<SkewCandidate> candidates;
  BloomFilter bloom;
};

/// Scans a completed build hash table into a report: every key feeds the
/// Bloom filter and the SpaceSaving sketch; candidates whose count clears
/// the *local* hot threshold (a lower bound on the global one, since this
/// instance holds every row of each of its keys) additionally carry their
/// build rows, in descending-count order up to max_hot_row_bytes.
SkewJoinReport BuildSkewReport(const JoinHashTable& table, int op,
                               uint32_t instance, uint32_t num_instances,
                               const SkewDefenseOptions& options);

/// The merged plan of action for one defended join, broadcast to every
/// worker once all of the join's instances have reported.
struct SkewDirective {
  int op = -1;
  /// Whether hot-key probe rows are sprayed round-robin (and their build
  /// rows replicated). Always false when hot_keys is empty.
  bool repartition = false;
  /// Detected hot keys, sorted ascending.
  std::vector<int32_t> hot_keys;
  uint32_t tuple_size = 0;
  /// Replicated build rows for every hot key, back to back.
  std::vector<std::byte> hot_rows;
  /// OR of every instance's build-key Bloom filter: a key that fails
  /// MayContain() matches nothing anywhere.
  BloomFilter bloom;
  uint64_t total_build_rows = 0;
  /// max/mean per-instance build rows, the measured pre-defense imbalance.
  double imbalance = 1.0;
};

/// Accumulates the per-instance reports of one defended join and decides
/// hot keys once all instances have reported. A key is hot when its count
/// is at least hot_fraction * (total_build_rows / num_instances), at
/// least min_hot_count, and its rows were included in the report. Under
/// kAuto, repartitioning additionally requires the measured build-row
/// imbalance to reach auto_imbalance_threshold; the Bloom filter is
/// always merged and always transferred.
class SkewReportMerger {
 public:
  SkewReportMerger(int op, uint32_t num_instances,
                   const SkewDefenseOptions& options);

  void Add(SkewJoinReport report);
  bool complete() const { return received_ == num_instances_; }
  uint32_t received() const { return received_; }

  /// Requires complete(). Consumes the accumulated state.
  SkewDirective Finish();

 private:
  int op_;
  uint32_t num_instances_;
  SkewDefenseOptions options_;
  uint32_t received_ = 0;
  uint32_t tuple_size_ = 0;
  std::vector<uint64_t> per_instance_rows_;
  BloomFilter bloom_;
  std::vector<SkewCandidate> candidates_;
};

/// Inserts the directive's replicated hot rows into one instance's build
/// table. A key whose rows are already present locally is skipped — that
/// instance is the key's owner and holds the originals, so replication
/// would double its matches. Returns the number of rows inserted.
uint64_t ApplySkewDirective(const SkewDirective& directive,
                            JoinHashTable* table);

/// The EmitWriter hook installed on the probe edge's producers: drops
/// rows whose key cannot match any build row (Bloom predicate transfer)
/// and re-routes hot-key rows round-robin across the consumer's
/// instances. Stateless per row and shared-safe only per instance — each
/// producer instance gets its own copy (the writer mutates no defense
/// state; counters live in the writer).
class SkewEmitDefense : public EmitDefense {
 public:
  explicit SkewEmitDefense(const SkewDirective& directive);

  Verdict Classify(int32_t split_value) override;

 private:
  BloomFilter bloom_;
  std::unordered_set<int32_t> hot_;
};

}  // namespace mjoin

#endif  // MJOIN_SKEW_DEFENSE_H_
