#ifndef MJOIN_SKEW_BLOOM_H_
#define MJOIN_SKEW_BLOOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mjoin {

/// Fixed-size Bloom filter over int32 join keys, used for predicate
/// transfer: each build instance inserts its build keys, the coordinator
/// ORs the per-instance filters together (same size by construction), and
/// the merged filter is installed on the probe side's producers so rows
/// that cannot match are dropped before they hit the wire.
///
/// Bits are rounded up to a power of two so membership tests mask instead
/// of mod. All k probe bits derive from one Mix64 of the key
/// (double-hashing: bit_i = h1 + i * h2), which keeps Insert/MayContain a
/// single multiply-shift plus k cheap bit tests. A default-constructed
/// filter is *unbuilt* and passes everything — the safe identity for code
/// paths where no defense is active.
class BloomFilter {
 public:
  /// Probe bits per key. Fixed (not tuned to n/m) so filters from
  /// different instances stay structurally identical and OR-mergeable.
  static constexpr uint32_t kNumHashes = 4;

  BloomFilter() = default;
  explicit BloomFilter(uint32_t num_bits);

  bool built() const { return !bytes_.empty(); }
  uint32_t num_bits() const;

  void Insert(int32_t key);

  /// True when `key` may have been inserted; never a false negative.
  /// An unbuilt filter reports true for every key.
  bool MayContain(int32_t key) const;

  /// ORs `other` into this filter; both must be built with the same size
  /// (or `other` unbuilt, a no-op). An unbuilt *this adopts other's bits.
  void Union(const BloomFilter& other);

  /// (ones/bits)^k — the classic load-based false-positive estimate,
  /// computed from the actual bit population so it reflects the filter as
  /// merged, not as designed. Unbuilt filters estimate 1.0 (pass-all).
  double EstimateFpRate() const;

  /// Set bits, for metrics.
  uint64_t PopCount() const;

  /// Raw byte serialization (little-endian bit order within a byte).
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  /// Rebuilds a filter from serialized bytes (size must be a power of two
  /// or empty).
  static BloomFilter FromBytes(std::vector<uint8_t> bytes);

 private:
  /// bytes_.size() * 8 == num_bits; empty when unbuilt.
  std::vector<uint8_t> bytes_;
};

}  // namespace mjoin

#endif  // MJOIN_SKEW_BLOOM_H_
