#ifndef MJOIN_SKEW_SKETCH_H_
#define MJOIN_SKEW_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace mjoin {

/// SpaceSaving heavy-hitter sketch [Metwally et al., ICDT'05] over int32
/// join keys. Tracks at most `capacity` candidate keys; when a new key
/// arrives with the sketch full, the minimum-count candidate is evicted
/// and the newcomer inherits its count (recorded as the entry's `error`).
/// Guarantees: every key with true count > N/capacity is retained, and a
/// retained entry's stored count overestimates its true count by at most
/// `error`. That makes the sketch safe for hot-key detection — a hot key
/// can never be missed, and a false positive merely replicates a few
/// build rows it did not need to.
///
/// The sketch is single-threaded (one per join instance, bumped on the
/// build path) and deliberately tiny: with the default capacity of 64 the
/// eviction scan is a linear pass over 64 entries, only taken on a miss
/// when full, which under skew (the only time the sketch matters) is the
/// rare path.
class SpaceSavingSketch {
 public:
  struct Entry {
    int32_t key = 0;
    uint64_t count = 0;
    /// Maximum possible overcount inherited from evicted predecessors.
    uint64_t error = 0;
  };

  explicit SpaceSavingSketch(size_t capacity);

  /// Counts one occurrence of `key`.
  void Observe(int32_t key);

  /// Total observations (exact, independent of capacity).
  uint64_t total() const { return total_; }
  size_t capacity() const { return capacity_; }

  /// All tracked candidates, sorted by count descending (ties by key
  /// ascending, so the order is deterministic for tests and the wire).
  std::vector<Entry> Entries() const;

 private:
  size_t capacity_;
  uint64_t total_ = 0;
  std::vector<Entry> entries_;
  /// key -> index into entries_.
  std::unordered_map<int32_t, size_t> index_;
};

}  // namespace mjoin

#endif  // MJOIN_SKEW_SKETCH_H_
