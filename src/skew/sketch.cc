#include "skew/sketch.h"

#include <algorithm>

#include "common/logging.h"

namespace mjoin {

SpaceSavingSketch::SpaceSavingSketch(size_t capacity) : capacity_(capacity) {
  MJOIN_CHECK(capacity > 0) << "SpaceSavingSketch needs capacity >= 1";
  entries_.reserve(capacity);
  index_.reserve(capacity);
}

void SpaceSavingSketch::Observe(int32_t key) {
  ++total_;
  auto it = index_.find(key);
  if (it != index_.end()) {
    ++entries_[it->second].count;
    return;
  }
  if (entries_.size() < capacity_) {
    index_.emplace(key, entries_.size());
    entries_.push_back(Entry{key, 1, 0});
    return;
  }
  // Full and the key is untracked: evict the minimum-count candidate and
  // let the newcomer inherit its count as the error bound.
  size_t min_i = 0;
  for (size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].count < entries_[min_i].count) min_i = i;
  }
  Entry& slot = entries_[min_i];
  index_.erase(slot.key);
  index_.emplace(key, min_i);
  slot.error = slot.count;
  ++slot.count;
  slot.key = key;
}

std::vector<SpaceSavingSketch::Entry> SpaceSavingSketch::Entries() const {
  std::vector<Entry> out = entries_;
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  return out;
}

}  // namespace mjoin
