#include "skew/bloom.h"

#include <cmath>

#include "common/logging.h"
#include "common/random.h"

namespace mjoin {
namespace {

bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

uint64_t RoundUpPowerOfTwo(uint64_t v) {
  uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

BloomFilter::BloomFilter(uint32_t num_bits) {
  MJOIN_CHECK(num_bits > 0) << "BloomFilter needs at least one bit";
  uint64_t bits = RoundUpPowerOfTwo(num_bits < 64 ? 64 : num_bits);
  bytes_.assign(static_cast<size_t>(bits / 8), 0);
}

uint32_t BloomFilter::num_bits() const {
  return static_cast<uint32_t>(bytes_.size() * 8);
}

void BloomFilter::Insert(int32_t key) {
  MJOIN_DCHECK(built());
  const uint64_t mask = static_cast<uint64_t>(bytes_.size()) * 8 - 1;
  uint64_t h = Mix64(static_cast<uint64_t>(static_cast<uint32_t>(key)));
  const uint64_t h1 = h & 0xffffffffu;
  const uint64_t h2 = (h >> 32) | 1;  // odd, so all k probes differ
  for (uint32_t i = 0; i < kNumHashes; ++i) {
    uint64_t bit = (h1 + i * h2) & mask;
    bytes_[bit >> 3] |= static_cast<uint8_t>(1u << (bit & 7));
  }
}

bool BloomFilter::MayContain(int32_t key) const {
  if (!built()) return true;
  const uint64_t mask = static_cast<uint64_t>(bytes_.size()) * 8 - 1;
  uint64_t h = Mix64(static_cast<uint64_t>(static_cast<uint32_t>(key)));
  const uint64_t h1 = h & 0xffffffffu;
  const uint64_t h2 = (h >> 32) | 1;
  for (uint32_t i = 0; i < kNumHashes; ++i) {
    uint64_t bit = (h1 + i * h2) & mask;
    if ((bytes_[bit >> 3] & (1u << (bit & 7))) == 0) return false;
  }
  return true;
}

void BloomFilter::Union(const BloomFilter& other) {
  if (!other.built()) return;
  if (!built()) {
    bytes_ = other.bytes_;
    return;
  }
  MJOIN_CHECK(bytes_.size() == other.bytes_.size())
      << "BloomFilter::Union requires equal sizes: " << num_bits() << " vs "
      << other.num_bits();
  for (size_t i = 0; i < bytes_.size(); ++i) bytes_[i] |= other.bytes_[i];
}

double BloomFilter::EstimateFpRate() const {
  if (!built()) return 1.0;
  double load = static_cast<double>(PopCount()) / num_bits();
  return std::pow(load, static_cast<double>(kNumHashes));
}

uint64_t BloomFilter::PopCount() const {
  uint64_t ones = 0;
  for (uint8_t b : bytes_) {
    ones += static_cast<uint64_t>(__builtin_popcount(b));
  }
  return ones;
}

BloomFilter BloomFilter::FromBytes(std::vector<uint8_t> bytes) {
  MJOIN_CHECK(bytes.empty() || IsPowerOfTwo(bytes.size()))
      << "BloomFilter bytes must be empty or a power of two, got "
      << bytes.size();
  BloomFilter f;
  f.bytes_ = std::move(bytes);
  return f;
}

}  // namespace mjoin
