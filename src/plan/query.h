#ifndef MJOIN_PLAN_QUERY_H_
#define MJOIN_PLAN_QUERY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/join_spec.h"
#include "plan/join_tree.h"

namespace mjoin {

/// Produces the join semantics (keys + projection) for join node `node`
/// given the already-derived operand schemas.
using JoinSpecFactory = std::function<StatusOr<JoinSpec>(
    const JoinTreeNode& node, std::shared_ptr<const Schema> left,
    std::shared_ptr<const Schema> right)>;

/// A multi-join query: the phase-1 join tree (shape + cardinalities +
/// cost annotations) plus the semantic binding of every node — base
/// relation schemas and per-join key/projection specs. Strategies
/// parallelize a JoinQuery without knowing the workload.
struct JoinQuery {
  JoinTree tree;
  std::map<std::string, std::shared_ptr<const Schema>> base_schemas;
  JoinSpecFactory join_spec_factory;
};

/// Bottom-up semantic analysis of a JoinQuery.
struct QueryAnalysis {
  /// Output schema of every tree node (leaf: base schema).
  std::vector<std::shared_ptr<const Schema>> node_schema;
  /// JoinSpec of every join node (empty default for leaves).
  std::vector<JoinSpec> node_spec;
};

/// Derives schemas and join specs for all nodes; fails if a leaf's
/// relation has no schema or a join spec cannot be built.
StatusOr<QueryAnalysis> AnalyzeQuery(const JoinQuery& query);

}  // namespace mjoin

#endif  // MJOIN_PLAN_QUERY_H_
