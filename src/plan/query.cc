#include "plan/query.h"

#include "common/string_util.h"

namespace mjoin {

StatusOr<QueryAnalysis> AnalyzeQuery(const JoinQuery& query) {
  QueryAnalysis analysis;
  analysis.node_schema.resize(query.tree.num_nodes());
  analysis.node_spec.resize(query.tree.num_nodes());

  for (int id : query.tree.PostOrder()) {
    const JoinTreeNode& node = query.tree.node(id);
    if (node.is_leaf()) {
      auto it = query.base_schemas.find(node.relation);
      if (it == query.base_schemas.end()) {
        return Status::NotFound(
            StrCat("no schema for base relation '", node.relation, "'"));
      }
      analysis.node_schema[id] = it->second;
    } else {
      MJOIN_ASSIGN_OR_RETURN(
          analysis.node_spec[id],
          query.join_spec_factory(node, analysis.node_schema[node.left],
                                  analysis.node_schema[node.right]));
      analysis.node_schema[id] = analysis.node_spec[id].output_schema;
    }
  }
  return analysis;
}

}  // namespace mjoin
