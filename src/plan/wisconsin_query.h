#ifndef MJOIN_PLAN_WISCONSIN_QUERY_H_
#define MJOIN_PLAN_WISCONSIN_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "plan/query.h"
#include "plan/shapes.h"

namespace mjoin {

/// The paper's test query (§4.1): `num_relations` Wisconsin relations of
/// `cardinality` tuples each, joined pairwise on their first unique
/// attribute; after each join the result is projected back to a
/// Wisconsin-shaped relation of the same size:
///
///   out.unique1 = left.unique2   (a fresh permutation -> next join is 1:1)
///   out.unique2 = right.unique2
///   out.<rest>  = right.<rest>
///
/// Every join tree over these relations has the same total cost and all
/// operands/results are equal in size, so response-time differences are
/// caused purely by tree shape and parallelization — the property the
/// paper's evaluation relies on.
StatusOr<JoinQuery> MakeWisconsinChainQuery(QueryShape shape,
                                            int num_relations,
                                            uint32_t cardinality);

/// Names used for the base relations: "rel0", "rel1", ...
std::vector<std::string> WisconsinRelationNames(int num_relations);

}  // namespace mjoin

#endif  // MJOIN_PLAN_WISCONSIN_QUERY_H_
