#include "plan/cost_model.h"

namespace mjoin {

void TotalCostModel::Annotate(JoinTree* tree) const {
  for (int id : tree->PostOrder()) {
    JoinTreeNode& node = tree->mutable_node(id);
    if (node.is_leaf()) {
      node.join_cost = 0;
      node.subtree_cost = 0;
      continue;
    }
    const JoinTreeNode& left = tree->node(node.left);
    const JoinTreeNode& right = tree->node(node.right);
    node.join_cost = JoinCost(left.cardinality, left.is_leaf(),
                              right.cardinality, right.is_leaf(),
                              node.cardinality);
    node.subtree_cost =
        node.join_cost + left.subtree_cost + right.subtree_cost;
  }
}

double TotalCostModel::TotalCost(const JoinTree& tree) const {
  double total = 0;
  for (int id : tree.PostOrder()) {
    const JoinTreeNode& node = tree.node(id);
    if (node.is_leaf()) continue;
    const JoinTreeNode& left = tree.node(node.left);
    const JoinTreeNode& right = tree.node(node.right);
    total += JoinCost(left.cardinality, left.is_leaf(), right.cardinality,
                      right.is_leaf(), node.cardinality);
  }
  return total;
}

}  // namespace mjoin
