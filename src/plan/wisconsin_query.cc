#include "plan/wisconsin_query.h"

#include "common/string_util.h"
#include "storage/wisconsin.h"

namespace mjoin {

std::vector<std::string> WisconsinRelationNames(int num_relations) {
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(num_relations));
  for (int i = 0; i < num_relations; ++i) names.push_back(StrCat("rel", i));
  return names;
}

StatusOr<JoinQuery> MakeWisconsinChainQuery(QueryShape shape,
                                            int num_relations,
                                            uint32_t cardinality) {
  if (num_relations < 2) {
    return Status::InvalidArgument("need at least two relations");
  }
  std::vector<std::string> names = WisconsinRelationNames(num_relations);
  MJOIN_ASSIGN_OR_RETURN(
      JoinTree tree,
      BuildShape(shape, names, static_cast<double>(cardinality)));

  JoinQuery query;
  query.tree = std::move(tree);
  auto wisconsin = std::make_shared<const Schema>(WisconsinSchema());
  for (const std::string& name : names) {
    query.base_schemas[name] = wisconsin;
  }

  // Joins always match column 0 (unique1-like) of both operands. The
  // projection rebuilds a Wisconsin-shaped tuple: column 0 from the left
  // operand's unique2 (so the result's join attribute is again a fresh
  // permutation of 0..n-1), column 1 from the right operand's unique2, the
  // remaining attributes from the right operand. All operands of all joins
  // therefore have identical schemas and sizes.
  query.join_spec_factory =
      [](const JoinTreeNode& node, std::shared_ptr<const Schema> left,
         std::shared_ptr<const Schema> right) -> StatusOr<JoinSpec> {
    std::vector<JoinOutputColumn> outputs;
    outputs.reserve(right->num_columns());
    outputs.push_back(JoinOutputColumn::Left(kUnique2));
    outputs.push_back(JoinOutputColumn::Right(kUnique2));
    for (size_t c = 2; c < right->num_columns(); ++c) {
      outputs.push_back(JoinOutputColumn::Right(c));
    }
    return MakeJoinSpec(std::move(left), std::move(right), /*left_key=*/0,
                        /*right_key=*/0, std::move(outputs));
  };
  return query;
}

}  // namespace mjoin
