#include "plan/segments.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace mjoin {

namespace {

// Builds the segment(s) of the right chain whose top join is `top`,
// recursing into producer segments. Returns the id of the *top-most*
// piece. With `max_build_tuples` > 0 the chain is split bottom-to-top so
// that each piece's total build-operand cardinality fits the budget.
int BuildSegment(const JoinTree& tree, int top, double max_build_tuples,
                 std::vector<RightDeepSegment>* segments,
                 std::vector<int>* segment_of) {
  MJOIN_CHECK(!tree.node(top).is_leaf());

  // Collect the right chain top-to-bottom, then store bottom-to-top.
  std::vector<int> chain;
  int cur = top;
  while (!tree.node(cur).is_leaf()) {
    chain.push_back(cur);
    cur = tree.node(cur).right;
  }
  std::reverse(chain.begin(), chain.end());

  // Partition the chain bottom-to-top by build-memory budget (one group
  // when unconstrained). A group always takes at least one join.
  std::vector<std::vector<int>> groups;
  double group_build = 0;
  for (int join : chain) {
    double build_card = tree.node(tree.node(join).left).cardinality;
    bool over = max_build_tuples > 0 && !groups.empty() &&
                !groups.back().empty() &&
                group_build + build_card > max_build_tuples;
    if (groups.empty() || over) {
      groups.emplace_back();
      group_build = 0;
    }
    groups.back().push_back(join);
    group_build += build_card;
  }

  int prev_piece = -1;
  for (const std::vector<int>& group : groups) {
    int id = static_cast<int>(segments->size());
    segments->push_back(RightDeepSegment{});
    {
      RightDeepSegment& seg = (*segments)[id];
      seg.id = id;
      seg.joins = group;
      seg.probe_from = prev_piece;
      for (int join : group) {
        (*segment_of)[join] = id;
        seg.total_cost += tree.node(join).join_cost;
      }
    }
    double children_cost = 0;
    if (prev_piece >= 0) {
      (*segments)[prev_piece].parent = id;
      (*segments)[id].children.push_back(prev_piece);
      children_cost += (*segments)[prev_piece].subtree_cost;
    }
    // Producer segments: every internal left child spawns one.
    for (int join : group) {
      int left = tree.node(join).left;
      if (!tree.node(left).is_leaf()) {
        int child = BuildSegment(tree, left, max_build_tuples, segments,
                                 segment_of);
        (*segments)[child].parent = id;
        (*segments)[id].children.push_back(child);
        children_cost += (*segments)[child].subtree_cost;
      }
    }
    (*segments)[id].subtree_cost = (*segments)[id].total_cost + children_cost;
    prev_piece = id;
  }
  return prev_piece;
}

}  // namespace

SegmentedTree SegmentedTree::Build(const JoinTree& tree,
                                   double max_build_tuples_per_segment) {
  SegmentedTree out;
  out.segment_of_.assign(tree.num_nodes(), -1);
  MJOIN_CHECK(!tree.node(tree.root()).is_leaf())
      << "cannot segment a tree without joins";
  out.root_segment_ =
      BuildSegment(tree, tree.root(), max_build_tuples_per_segment,
                   &out.segments_, &out.segment_of_);
  return out;
}

std::string SegmentedTree::ToString(const JoinTree& tree) const {
  std::string out;
  for (const RightDeepSegment& seg : segments_) {
    std::vector<std::string> joins;
    joins.reserve(seg.joins.size());
    for (int j : seg.joins) joins.push_back(StrCat("join#", j));
    out += StrCat("segment ", seg.id, ": [", StrJoin(joins, " -> "),
                  "] cost=", seg.total_cost,
                  " subtree_cost=", seg.subtree_cost);
    if (seg.probe_from >= 0) {
      out += StrCat(" probes result of segment ", seg.probe_from);
    }
    if (seg.parent >= 0) out += StrCat(" -> feeds segment ", seg.parent);
    out += "\n";
  }
  return out;
}

}  // namespace mjoin
