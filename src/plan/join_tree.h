#ifndef MJOIN_PLAN_JOIN_TREE_H_
#define MJOIN_PLAN_JOIN_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"

namespace mjoin {

/// One node of a binary join tree. Leaves reference base relations by
/// name; internal nodes are equi-joins whose *left* child is the build
/// (inner) operand and whose *right* child is the probe (outer) operand,
/// following the paper's (Schneider's) terminology.
struct JoinTreeNode {
  int id = -1;
  int left = -1;   // -1 for leaves
  int right = -1;  // -1 for leaves
  int parent = -1;
  std::string relation;  // leaves only
  /// (Estimated) output cardinality of this subtree.
  double cardinality = 0;
  /// Total-cost annotations, filled by TotalCostModel::Annotate.
  double join_cost = 0;     // cost of this node's join (0 for leaves)
  double subtree_cost = 0;  // sum of join costs in this subtree

  bool is_leaf() const { return left < 0; }
};

/// An immutable-shape binary join tree stored in an arena. Node ids are
/// stable indices into nodes().
class JoinTree {
 public:
  JoinTree() = default;

  /// Adds a leaf for `relation` with the given base cardinality; returns
  /// its id.
  int AddLeaf(std::string relation, double cardinality);

  /// Adds a join over existing roots `left` and `right`; returns its id.
  /// `cardinality` is the (estimated) result size.
  int AddJoin(int left, int right, double cardinality);

  void SetRoot(int id);

  int root() const { return root_; }
  const JoinTreeNode& node(int id) const { return nodes_[id]; }
  JoinTreeNode& mutable_node(int id) { return nodes_[id]; }
  size_t num_nodes() const { return nodes_.size(); }
  size_t num_leaves() const { return num_leaves_; }
  size_t num_joins() const { return nodes_.size() - num_leaves_; }

  /// Node ids of the subtree rooted at `id` in post order (children before
  /// parents). With id == root(): the whole tree.
  std::vector<int> PostOrder(int id) const;
  std::vector<int> PostOrder() const { return PostOrder(root_); }

  /// Number of join nodes on the longest root-to-leaf path.
  int JoinDepth(int id) const;
  int JoinDepth() const { return JoinDepth(root_); }

  /// Swaps left/right children of join `id` (build <-> probe roles).
  void SwapChildren(int id);

  /// Structural + annotation checks (ids consistent, parents correct,
  /// exactly one root, cardinalities positive).
  Status Validate() const;

  /// Indented multi-line rendering, e.g. for EXPLAIN output.
  std::string ToString() const;

 private:
  void ToStringRec(int id, int depth, std::string* out) const;

  std::vector<JoinTreeNode> nodes_;
  size_t num_leaves_ = 0;
  int root_ = -1;
};

}  // namespace mjoin

#endif  // MJOIN_PLAN_JOIN_TREE_H_
