#include "plan/catalog.h"

#include <algorithm>
#include <unordered_map>

#include "common/string_util.h"

namespace mjoin {

double ColumnStats::PartitioningSkewLowerBound(uint32_t fragments) const {
  if (num_tuples == 0 || fragments == 0) return 0;
  double mean = static_cast<double>(num_tuples) / fragments;
  // All duplicates of the hottest value land on one fragment.
  double hottest = static_cast<double>(top_frequency);
  return std::max(0.0, hottest / mean - 1.0);
}

StatusOr<ColumnStats> ComputeColumnStats(const Relation& relation,
                                         size_t column) {
  if (column >= relation.schema().num_columns()) {
    return Status::OutOfRange(StrCat("no column ", column));
  }
  if (relation.schema().column(column).type != ColumnType::kInt32) {
    return Status::InvalidArgument("stats only support int32 columns");
  }
  ColumnStats stats;
  stats.num_tuples = relation.num_tuples();
  std::unordered_map<int32_t, uint64_t> counts;
  counts.reserve(relation.num_tuples());
  for (size_t i = 0; i < relation.num_tuples(); ++i) {
    int32_t v = relation.tuple(i).GetInt32(column);
    if (i == 0) {
      stats.min = stats.max = v;
    } else {
      stats.min = std::min(stats.min, v);
      stats.max = std::max(stats.max, v);
    }
    ++counts[v];
  }
  stats.distinct = counts.size();
  for (const auto& [value, count] : counts) {
    stats.top_frequency = std::max(stats.top_frequency, count);
  }
  return stats;
}

StatusOr<EquiDepthHistogram> EquiDepthHistogram::Build(
    const Relation& relation, size_t column, size_t buckets) {
  if (buckets == 0) return Status::InvalidArgument("need at least 1 bucket");
  if (column >= relation.schema().num_columns() ||
      relation.schema().column(column).type != ColumnType::kInt32) {
    return Status::InvalidArgument("histograms require an int32 column");
  }
  std::vector<int32_t> values;
  values.reserve(relation.num_tuples());
  for (size_t i = 0; i < relation.num_tuples(); ++i) {
    values.push_back(relation.tuple(i).GetInt32(column));
  }
  std::sort(values.begin(), values.end());

  EquiDepthHistogram histogram;
  histogram.total_count_ = values.size();
  if (values.empty()) return histogram;

  size_t per_bucket = std::max<size_t>(1, values.size() / buckets);
  size_t i = 0;
  while (i < values.size()) {
    size_t end = std::min(values.size(), i + per_bucket);
    // Never split a run of equal values across buckets.
    while (end < values.size() && values[end] == values[end - 1]) ++end;
    Bucket bucket;
    bucket.lo = values[i];
    bucket.hi = values[end - 1];
    bucket.count = end - i;
    bucket.distinct = 1;
    for (size_t k = i + 1; k < end; ++k) {
      bucket.distinct += values[k] != values[k - 1] ? 1 : 0;
    }
    histogram.buckets_.push_back(bucket);
    i = end;
  }
  return histogram;
}

double EquiDepthHistogram::EstimateRange(int32_t lo, int32_t hi) const {
  if (lo > hi) return 0;
  double estimate = 0;
  for (const Bucket& bucket : buckets_) {
    int64_t overlap_lo = std::max<int64_t>(lo, bucket.lo);
    int64_t overlap_hi = std::min<int64_t>(hi, bucket.hi);
    if (overlap_lo > overlap_hi) continue;
    int64_t width = static_cast<int64_t>(bucket.hi) - bucket.lo + 1;
    double fraction =
        static_cast<double>(overlap_hi - overlap_lo + 1) / width;
    estimate += static_cast<double>(bucket.count) * fraction;
  }
  return estimate;
}

double EquiDepthHistogram::EstimateEquals(int32_t value) const {
  for (const Bucket& bucket : buckets_) {
    if (value < bucket.lo || value > bucket.hi) continue;
    // Uniform over the bucket's distinct values.
    return static_cast<double>(bucket.count) /
           std::max<uint64_t>(1, bucket.distinct);
  }
  return 0;
}

double EquiDepthHistogram::EstimateJoin(const EquiDepthHistogram& other) const {
  double estimate = 0;
  for (const Bucket& a : buckets_) {
    for (const Bucket& b : other.buckets_) {
      int64_t lo = std::max(a.lo, b.lo);
      int64_t hi = std::min(a.hi, b.hi);
      if (lo > hi) continue;
      int64_t width_a = static_cast<int64_t>(a.hi) - a.lo + 1;
      int64_t width_b = static_cast<int64_t>(b.hi) - b.lo + 1;
      double count_a = static_cast<double>(a.count) *
                       static_cast<double>(hi - lo + 1) / width_a;
      double count_b = static_cast<double>(b.count) *
                       static_cast<double>(hi - lo + 1) / width_b;
      double distinct_a = std::max(
          1.0, static_cast<double>(a.distinct) *
                   static_cast<double>(hi - lo + 1) / width_a);
      double distinct_b = std::max(
          1.0, static_cast<double>(b.distinct) *
                   static_cast<double>(hi - lo + 1) / width_b);
      estimate += count_a * count_b / std::max(distinct_a, distinct_b);
    }
  }
  return estimate;
}

std::string EquiDepthHistogram::ToString() const {
  std::string out = StrCat("histogram[", total_count_, " tuples]:");
  for (const Bucket& bucket : buckets_) {
    out += StrCat(" [", bucket.lo, "..", bucket.hi, "]x", bucket.count,
                  "(d=", bucket.distinct, ")");
  }
  return out;
}

Status Catalog::Analyze(const std::string& name, const Relation& relation,
                        size_t column) {
  MJOIN_ASSIGN_OR_RETURN(ColumnStats stats,
                         ComputeColumnStats(relation, column));
  stats_[{name, column}] = stats;
  return Status::OK();
}

StatusOr<ColumnStats> Catalog::Get(const std::string& name,
                                   size_t column) const {
  auto it = stats_.find({name, column});
  if (it == stats_.end()) {
    return Status::NotFound(
        StrCat("no stats for ", name, " column ", column));
  }
  return it->second;
}

StatusOr<double> Catalog::EstimateEquiJoin(const std::string& left,
                                           size_t left_column,
                                           const std::string& right,
                                           size_t right_column) const {
  MJOIN_ASSIGN_OR_RETURN(ColumnStats l, Get(left, left_column));
  MJOIN_ASSIGN_OR_RETURN(ColumnStats r, Get(right, right_column));
  double d = std::max<double>(1.0, static_cast<double>(std::max(l.distinct,
                                                                r.distinct)));
  return static_cast<double>(l.num_tuples) *
         static_cast<double>(r.num_tuples) / d;
}

}  // namespace mjoin
