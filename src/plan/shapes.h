#ifndef MJOIN_PLAN_SHAPES_H_
#define MJOIN_PLAN_SHAPES_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "plan/join_tree.h"

namespace mjoin {

/// The five query-tree shapes of Figure 8, over the same set of relations.
/// Left children are build (inner) operands, right children probe (outer)
/// operands.
enum class QueryShape {
  /// Each join's left child is the previous join: no pipelining potential
  /// for the simple hash-join, no right-deep segments longer than one.
  kLeftLinear,
  /// A spine of bushy joins leaning left: spine steps join two
  /// intermediate results (the "bushy pipeline" of §2.3.3).
  kLeftOrientedBushy,
  /// A balanced tree: maximal independent subtrees (best case for SE).
  kWideBushy,
  /// Mirror of kLeftOrientedBushy: a long right-deep probe pipeline whose
  /// build operands are small independent subtrees (best case for RD).
  kRightOrientedBushy,
  /// Each join's right child is the previous join: one long right-deep
  /// segment (RD degenerates to FP).
  kRightLinear,
};

/// All five shapes in paper order.
inline constexpr QueryShape kAllShapes[] = {
    QueryShape::kLeftLinear, QueryShape::kLeftOrientedBushy,
    QueryShape::kWideBushy, QueryShape::kRightOrientedBushy,
    QueryShape::kRightLinear};

/// "left linear", "wide bushy", ...
std::string ShapeName(QueryShape shape);

/// Builds the join tree of `shape` over `relations` (>= 2 relations), each
/// with base cardinality `cardinality`; every join result also has
/// cardinality `cardinality`, matching the paper's regular 1:1 Wisconsin
/// chain query. For the bushy shapes, relations are first combined into
/// pairs and the pair results joined along a spine (left- or
/// right-oriented) or balanced (wide).
StatusOr<JoinTree> BuildShape(QueryShape shape,
                              const std::vector<std::string>& relations,
                              double cardinality);

/// The example 5-way join tree of Figure 2, used for the utilization
/// diagrams (Figures 3-7): join ids are returned via `labels`, mapping
/// each join node id to its paper label (1, 5, 3, 4 = relative work).
/// Relations are named A..E with cardinality 1000.
JoinTree BuildFigure2ExampleTree(std::vector<std::pair<int, int>>* labels);

}  // namespace mjoin

#endif  // MJOIN_PLAN_SHAPES_H_
