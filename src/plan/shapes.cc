#include "plan/shapes.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace mjoin {

std::string ShapeName(QueryShape shape) {
  switch (shape) {
    case QueryShape::kLeftLinear:
      return "left linear";
    case QueryShape::kLeftOrientedBushy:
      return "left bushy";
    case QueryShape::kWideBushy:
      return "wide bushy";
    case QueryShape::kRightOrientedBushy:
      return "right bushy";
    case QueryShape::kRightLinear:
      return "right linear";
  }
  return "?";
}

namespace {

// Balanced tree over relations [lo, hi).
int BuildBalanced(JoinTree* tree, const std::vector<std::string>& relations,
                  double card, size_t lo, size_t hi) {
  if (hi - lo == 1) return tree->AddLeaf(relations[lo], card);
  size_t mid = lo + (hi - lo) / 2;
  int left = BuildBalanced(tree, relations, card, lo, mid);
  int right = BuildBalanced(tree, relations, card, mid, hi);
  return tree->AddJoin(left, right, card);
}

// Joins relations pairwise: P_j = R_{2j} JOIN R_{2j+1}; an odd trailing
// relation becomes a bare leaf "pair".
std::vector<int> BuildPairs(JoinTree* tree,
                            const std::vector<std::string>& relations,
                            double card) {
  std::vector<int> pairs;
  size_t i = 0;
  for (; i + 1 < relations.size(); i += 2) {
    int l = tree->AddLeaf(relations[i], card);
    int r = tree->AddLeaf(relations[i + 1], card);
    pairs.push_back(tree->AddJoin(l, r, card));
  }
  if (i < relations.size()) pairs.push_back(tree->AddLeaf(relations[i], card));
  return pairs;
}

}  // namespace

StatusOr<JoinTree> BuildShape(QueryShape shape,
                              const std::vector<std::string>& relations,
                              double cardinality) {
  if (relations.size() < 2) {
    return Status::InvalidArgument("need at least two relations");
  }
  if (cardinality <= 0) {
    return Status::InvalidArgument("cardinality must be positive");
  }
  JoinTree tree;
  switch (shape) {
    case QueryShape::kLeftLinear: {
      int t = tree.AddLeaf(relations[0], cardinality);
      for (size_t i = 1; i < relations.size(); ++i) {
        int leaf = tree.AddLeaf(relations[i], cardinality);
        t = tree.AddJoin(t, leaf, cardinality);
      }
      break;
    }
    case QueryShape::kRightLinear: {
      int t = tree.AddLeaf(relations.back(), cardinality);
      for (size_t i = relations.size() - 1; i-- > 0;) {
        int leaf = tree.AddLeaf(relations[i], cardinality);
        t = tree.AddJoin(leaf, t, cardinality);
      }
      break;
    }
    case QueryShape::kLeftOrientedBushy: {
      std::vector<int> pairs = BuildPairs(&tree, relations, cardinality);
      int t = pairs[0];
      for (size_t j = 1; j < pairs.size(); ++j) {
        t = tree.AddJoin(t, pairs[j], cardinality);
      }
      break;
    }
    case QueryShape::kRightOrientedBushy: {
      std::vector<int> pairs = BuildPairs(&tree, relations, cardinality);
      int t = pairs.back();
      for (size_t j = pairs.size() - 1; j-- > 0;) {
        t = tree.AddJoin(pairs[j], t, cardinality);
      }
      break;
    }
    case QueryShape::kWideBushy: {
      BuildBalanced(&tree, relations, cardinality, 0, relations.size());
      break;
    }
  }
  MJOIN_RETURN_IF_ERROR(tree.Validate());
  return tree;
}

JoinTree BuildFigure2ExampleTree(std::vector<std::pair<int, int>>* labels) {
  // J1 = A JOIN (J5), J5 = (J4) JOIN (J3), J4 = B JOIN C, J3 = D JOIN E.
  // The numeric labels give the joins' relative amounts of work.
  const double kCard = 1000;
  JoinTree tree;
  int a = tree.AddLeaf("A", kCard);
  int b = tree.AddLeaf("B", kCard);
  int c = tree.AddLeaf("C", kCard);
  int d = tree.AddLeaf("D", kCard);
  int e = tree.AddLeaf("E", kCard);
  int j4 = tree.AddJoin(b, c, kCard);
  int j3 = tree.AddJoin(d, e, kCard);
  int j5 = tree.AddJoin(j4, j3, kCard);
  int j1 = tree.AddJoin(a, j5, kCard);
  if (labels != nullptr) {
    *labels = {{j1, 1}, {j5, 5}, {j3, 3}, {j4, 4}};
  }
  MJOIN_CHECK_OK(tree.Validate());
  return tree;
}

}  // namespace mjoin
