#ifndef MJOIN_PLAN_COST_MODEL_H_
#define MJOIN_PLAN_COST_MODEL_H_

#include "plan/join_tree.h"

namespace mjoin {

/// Coefficients of the paper's total-cost formula for a main-memory join
///
///     cost = a*n1 + b*n2 + c*r
///
/// with a (resp. b) = `base_operand` when the operand is a base relation
/// and `intermediate_operand` when it is an intermediate result (its tuples
/// must additionally be retrieved from the network), and c = `result`
/// (result tuples are created and sent). Paper defaults: 1 / 2 / 2.
struct JoinCostCoefficients {
  double base_operand = 1.0;
  double intermediate_operand = 2.0;
  double result = 2.0;

  /// A deliberately wrong, shape-blind variant (all tuples cost the same)
  /// used by the cost-function ablation.
  static JoinCostCoefficients Uniform() { return {1.0, 1.0, 1.0}; }
};

/// The paper's phase-1/phase-2 cost model: estimates the relative amount
/// of work in each binary join of a tree. Used both by the phase-1
/// optimizer (total cost of a tree) and by the phase-2 strategies
/// (proportional processor allocation).
class TotalCostModel {
 public:
  TotalCostModel() = default;
  explicit TotalCostModel(JoinCostCoefficients coefficients)
      : coefficients_(coefficients) {}

  const JoinCostCoefficients& coefficients() const { return coefficients_; }

  /// Cost of one join given operand cardinalities, whether each operand is
  /// a base relation, and the result cardinality.
  double JoinCost(double n1, bool left_is_base, double n2, bool right_is_base,
                  double result) const {
    double a = left_is_base ? coefficients_.base_operand
                            : coefficients_.intermediate_operand;
    double b = right_is_base ? coefficients_.base_operand
                             : coefficients_.intermediate_operand;
    return a * n1 + b * n2 + coefficients_.result * result;
  }

  /// Fills join_cost and subtree_cost on every node of `tree`.
  void Annotate(JoinTree* tree) const;

  /// Sum of join costs over the whole tree (after/without annotation).
  double TotalCost(const JoinTree& tree) const;

 private:
  JoinCostCoefficients coefficients_;
};

}  // namespace mjoin

#endif  // MJOIN_PLAN_COST_MODEL_H_
