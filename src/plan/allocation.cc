#include "plan/allocation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/string_util.h"

namespace mjoin {

StatusOr<std::vector<uint32_t>> ProportionalAllocation(
    const std::vector<double>& work, uint32_t num_processors) {
  size_t n = work.size();
  if (n == 0) return Status::InvalidArgument("no operations to allocate");
  if (num_processors < n) {
    return Status::InvalidArgument(
        StrCat("cannot allocate ", n, " operations over ", num_processors,
               " processors without sharing (strategies do not allow one "
               "processor to work on two joins concurrently)"));
  }
  double total = 0;
  for (double w : work) {
    if (w <= 0) return Status::InvalidArgument("non-positive work weight");
    total += w;
  }

  std::vector<uint32_t> counts(n);
  std::vector<double> remainders(n);
  uint32_t assigned = 0;
  for (size_t i = 0; i < n; ++i) {
    double quota = static_cast<double>(num_processors) * work[i] / total;
    counts[i] = std::max<uint32_t>(1, static_cast<uint32_t>(quota));
    remainders[i] = quota - std::floor(quota);
    assigned += counts[i];
  }

  // Hand out leftovers to the largest remainders; reclaim overshoot (caused
  // by the >=1 clamp) from the most over-allocated operations.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  if (assigned < num_processors) {
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (remainders[a] != remainders[b]) return remainders[a] > remainders[b];
      return a < b;
    });
    size_t k = 0;
    while (assigned < num_processors) {
      ++counts[order[k % n]];
      ++assigned;
      ++k;
    }
  } else if (assigned > num_processors) {
    while (assigned > num_processors) {
      // Take one from the operation whose per-processor work would stay
      // the lowest after removal, but never below one processor.
      size_t victim = n;
      double best = -1;
      for (size_t i = 0; i < n; ++i) {
        if (counts[i] <= 1) continue;
        double load_after = work[i] / static_cast<double>(counts[i] - 1);
        if (victim == n || load_after < best) {
          victim = i;
          best = load_after;
        }
      }
      MJOIN_CHECK(victim < n) << "cannot shrink allocation below one each";
      --counts[victim];
      --assigned;
    }
  }
  return counts;
}

std::vector<std::vector<uint32_t>> CarveBlocks(
    const std::vector<uint32_t>& processors,
    const std::vector<uint32_t>& counts) {
  std::vector<std::vector<uint32_t>> blocks;
  blocks.reserve(counts.size());
  size_t offset = 0;
  for (uint32_t count : counts) {
    MJOIN_CHECK(offset + count <= processors.size())
        << "CarveBlocks: counts exceed available processors";
    blocks.emplace_back(processors.begin() + static_cast<long>(offset),
                        processors.begin() + static_cast<long>(offset + count));
    offset += count;
  }
  return blocks;
}

std::vector<uint32_t> ProcessorRange(uint32_t lo, uint32_t hi) {
  std::vector<uint32_t> out;
  out.reserve(hi - lo);
  for (uint32_t p = lo; p < hi; ++p) out.push_back(p);
  return out;
}

double DiscretizationError(const std::vector<double>& work,
                           const std::vector<uint32_t>& counts) {
  MJOIN_CHECK(work.size() == counts.size());
  double total_work = 0;
  double total_procs = 0;
  double max_load = 0;
  for (size_t i = 0; i < work.size(); ++i) {
    MJOIN_CHECK(counts[i] > 0);
    total_work += work[i];
    total_procs += counts[i];
    max_load = std::max(max_load, work[i] / counts[i]);
  }
  if (total_work == 0) return 0;
  double ideal = total_work / total_procs;
  return max_load / ideal - 1.0;
}

}  // namespace mjoin
