#ifndef MJOIN_PLAN_TRANSFORM_H_
#define MJOIN_PLAN_TRANSFORM_H_

#include "plan/join_tree.h"

namespace mjoin {

/// Swaps the children of every join: the full mirror image of the tree.
/// A left-linear tree becomes right-linear, etc. Join commutativity makes
/// this free of cost penalty under the paper's symmetric-in-operands cost
/// function (the a/b coefficients swap but the sum is unchanged only when
/// both operands have the same base/intermediate status; in general the
/// total cost changes by (a-b)*(n1-n2) terms — see RightOrient for the
/// paper's "mirror to make right-oriented" use).
void MirrorTree(JoinTree* tree);

/// The §5 remark: "it is possible without cost penalty to mirror (parts
/// of) a query to make it more right-oriented". For every join whose
/// *left* subtree contains more joins than its right subtree, swap the
/// children, producing longer right-deep segments for RD. Returns the
/// number of joins swapped.
int RightOrient(JoinTree* tree);

/// Counts joins in the subtree rooted at `id`.
int CountJoins(const JoinTree& tree, int id);

}  // namespace mjoin

#endif  // MJOIN_PLAN_TRANSFORM_H_
