#ifndef MJOIN_PLAN_CATALOG_H_
#define MJOIN_PLAN_CATALOG_H_

#include <cstdint>
#include <map>
#include <vector>
#include <string>

#include "common/statusor.h"
#include "storage/relation.h"

namespace mjoin {

/// Statistics of one int32 column, gathered by scanning the data.
struct ColumnStats {
  uint64_t num_tuples = 0;
  uint64_t distinct = 0;
  int32_t min = 0;
  int32_t max = 0;
  /// Count of the most frequent value: >> num_tuples/distinct indicates
  /// skew (load imbalance under hash declustering, §3.5).
  uint64_t top_frequency = 0;

  /// max_fragment_load / mean_fragment_load - 1 under ideal hash
  /// declustering over `fragments` nodes, estimated from top_frequency:
  /// a lower bound on the partitioning skew of this column.
  double PartitioningSkewLowerBound(uint32_t fragments) const;
};

/// Computes exact statistics of an int32 column.
StatusOr<ColumnStats> ComputeColumnStats(const Relation& relation,
                                         size_t column);

/// Equi-depth histogram over an int32 column: `buckets` ranges holding
/// (approximately) equal tuple counts, plus per-bucket distinct counts.
/// Skewed columns show up as very narrow hot buckets; the estimator uses
/// the histogram to bound per-fragment load and join sizes better than a
/// single distinct count does.
class EquiDepthHistogram {
 public:
  /// Builds the histogram by sorting a copy of the column (O(n log n)).
  static StatusOr<EquiDepthHistogram> Build(const Relation& relation,
                                            size_t column, size_t buckets);

  struct Bucket {
    int32_t lo = 0;        // inclusive
    int32_t hi = 0;        // inclusive
    uint64_t count = 0;
    uint64_t distinct = 0;
  };

  const std::vector<Bucket>& buckets() const { return buckets_; }
  uint64_t total_count() const { return total_count_; }

  /// Estimated number of tuples with value in [lo, hi] (inclusive),
  /// assuming uniformity within buckets.
  double EstimateRange(int32_t lo, int32_t hi) const;

  /// Estimated number of tuples equal to `value`.
  double EstimateEquals(int32_t value) const;

  /// Estimated |R JOIN S| on this column vs `other`'s column: the sum over
  /// overlapping bucket intersections of count_r * count_s / max(d_r, d_s).
  double EstimateJoin(const EquiDepthHistogram& other) const;

  std::string ToString() const;

 private:
  std::vector<Bucket> buckets_;
  uint64_t total_count_ = 0;
};

/// A catalog of per-(relation, column) statistics, feeding the optimizer's
/// cardinality estimation.
class Catalog {
 public:
  /// Scans `relation`'s column and stores its stats under (name, column).
  Status Analyze(const std::string& name, const Relation& relation,
                 size_t column);

  StatusOr<ColumnStats> Get(const std::string& name, size_t column) const;

  /// Estimated |L JOIN R| on L.left_column = R.right_column using the
  /// standard containment assumption: |L|*|R| / max(d_L, d_R).
  StatusOr<double> EstimateEquiJoin(const std::string& left, size_t left_column,
                                    const std::string& right,
                                    size_t right_column) const;

 private:
  std::map<std::pair<std::string, size_t>, ColumnStats> stats_;
};

}  // namespace mjoin

#endif  // MJOIN_PLAN_CATALOG_H_
