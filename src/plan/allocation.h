#ifndef MJOIN_PLAN_ALLOCATION_H_
#define MJOIN_PLAN_ALLOCATION_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"

namespace mjoin {

/// Distributes `num_processors` processors over operations with the given
/// relative amounts of `work`, proportionally, with every operation
/// receiving at least one processor (processors and operations are both
/// discrete — the paper's candy-over-kids discretization).
///
/// Uses the largest-remainder method: quotas q_i = P*w_i/W are floored
/// (clamped to >= 1) and leftover processors go to the largest fractional
/// remainders. Returns InvalidArgument when P < #operations or any weight
/// is <= 0.
StatusOr<std::vector<uint32_t>> ProportionalAllocation(
    const std::vector<double>& work, uint32_t num_processors);

/// Carves consecutive disjoint blocks out of `processors` according to
/// `counts` (sum(counts) must be <= processors.size()). Block i receives
/// the next counts[i] processor ids.
std::vector<std::vector<uint32_t>> CarveBlocks(
    const std::vector<uint32_t>& processors,
    const std::vector<uint32_t>& counts);

/// Convenience: processor ids lo..hi-1.
std::vector<uint32_t> ProcessorRange(uint32_t lo, uint32_t hi);

/// Worst-case relative load imbalance of an allocation:
/// max_i(w_i / c_i) / (W / P) - 1. Zero means perfectly balanced.
double DiscretizationError(const std::vector<double>& work,
                           const std::vector<uint32_t>& counts);

}  // namespace mjoin

#endif  // MJOIN_PLAN_ALLOCATION_H_
