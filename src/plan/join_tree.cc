#include "plan/join_tree.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace mjoin {

int JoinTree::AddLeaf(std::string relation, double cardinality) {
  JoinTreeNode node;
  node.id = static_cast<int>(nodes_.size());
  node.relation = std::move(relation);
  node.cardinality = cardinality;
  nodes_.push_back(std::move(node));
  ++num_leaves_;
  if (root_ < 0) root_ = nodes_.back().id;
  return nodes_.back().id;
}

int JoinTree::AddJoin(int left, int right, double cardinality) {
  MJOIN_CHECK(left >= 0 && left < static_cast<int>(nodes_.size()));
  MJOIN_CHECK(right >= 0 && right < static_cast<int>(nodes_.size()));
  JoinTreeNode node;
  node.id = static_cast<int>(nodes_.size());
  node.left = left;
  node.right = right;
  node.cardinality = cardinality;
  nodes_.push_back(std::move(node));
  int id = nodes_.back().id;
  nodes_[left].parent = id;
  nodes_[right].parent = id;
  root_ = id;
  return id;
}

void JoinTree::SetRoot(int id) {
  MJOIN_CHECK(id >= 0 && id < static_cast<int>(nodes_.size()));
  root_ = id;
}

std::vector<int> JoinTree::PostOrder(int id) const {
  std::vector<int> out;
  out.reserve(nodes_.size());
  // Explicit stack to avoid recursion depth limits on long linear trees.
  std::vector<std::pair<int, bool>> stack = {{id, false}};
  while (!stack.empty()) {
    auto [node_id, expanded] = stack.back();
    stack.pop_back();
    if (node_id < 0) continue;
    if (expanded || nodes_[node_id].is_leaf()) {
      out.push_back(node_id);
    } else {
      stack.push_back({node_id, true});
      stack.push_back({nodes_[node_id].right, false});
      stack.push_back({nodes_[node_id].left, false});
    }
  }
  return out;
}

int JoinTree::JoinDepth(int id) const {
  if (id < 0 || nodes_[id].is_leaf()) return 0;
  return 1 + std::max(JoinDepth(nodes_[id].left), JoinDepth(nodes_[id].right));
}

void JoinTree::SwapChildren(int id) {
  MJOIN_CHECK(!nodes_[id].is_leaf());
  std::swap(nodes_[id].left, nodes_[id].right);
}

Status JoinTree::Validate() const {
  if (nodes_.empty()) return Status::FailedPrecondition("empty join tree");
  if (root_ < 0 || root_ >= static_cast<int>(nodes_.size())) {
    return Status::Internal("invalid root id");
  }
  std::vector<int> seen(nodes_.size(), 0);
  for (int id : PostOrder(root_)) {
    const JoinTreeNode& node = nodes_[id];
    if (++seen[id] > 1) {
      return Status::Internal(StrCat("node ", id, " reachable twice (DAG)"));
    }
    if (node.cardinality <= 0) {
      return Status::Internal(StrCat("node ", id, " has cardinality ",
                                     node.cardinality));
    }
    if (node.is_leaf()) {
      if (node.relation.empty()) {
        return Status::Internal(StrCat("leaf ", id, " has no relation"));
      }
      if (node.right >= 0) {
        return Status::Internal(StrCat("leaf ", id, " has a right child"));
      }
    } else {
      if (node.right < 0 || node.relation.size() > 0) {
        return Status::Internal(StrCat("malformed join node ", id));
      }
      if (nodes_[node.left].parent != id || nodes_[node.right].parent != id) {
        return Status::Internal(StrCat("bad parent links at join ", id));
      }
    }
  }
  size_t reachable = PostOrder(root_).size();
  if (reachable != nodes_.size()) {
    return Status::Internal(
        StrCat("tree has ", nodes_.size(), " nodes but only ", reachable,
               " reachable from root"));
  }
  return Status::OK();
}

void JoinTree::ToStringRec(int id, int depth, std::string* out) const {
  const JoinTreeNode& node = nodes_[id];
  out->append(static_cast<size_t>(depth) * 2, ' ');
  if (node.is_leaf()) {
    out->append(StrCat("scan ", node.relation, " [card=", node.cardinality,
                       "]\n"));
  } else {
    out->append(StrCat("join#", id, " [card=", node.cardinality,
                       " cost=", node.join_cost,
                       " subtree_cost=", node.subtree_cost, "]\n"));
    ToStringRec(node.left, depth + 1, out);
    ToStringRec(node.right, depth + 1, out);
  }
}

std::string JoinTree::ToString() const {
  std::string out;
  if (root_ >= 0) ToStringRec(root_, 0, &out);
  return out;
}

}  // namespace mjoin
