#include "plan/transform.h"

namespace mjoin {

void MirrorTree(JoinTree* tree) {
  for (int id : tree->PostOrder()) {
    if (!tree->node(id).is_leaf()) tree->SwapChildren(id);
  }
}

int CountJoins(const JoinTree& tree, int id) {
  const JoinTreeNode& node = tree.node(id);
  if (node.is_leaf()) return 0;
  return 1 + CountJoins(tree, node.left) + CountJoins(tree, node.right);
}

int RightOrient(JoinTree* tree) {
  int swapped = 0;
  for (int id : tree->PostOrder()) {
    const JoinTreeNode& node = tree->node(id);
    if (node.is_leaf()) continue;
    if (CountJoins(*tree, node.left) > CountJoins(*tree, node.right)) {
      tree->SwapChildren(id);
      ++swapped;
    }
  }
  return swapped;
}

}  // namespace mjoin
