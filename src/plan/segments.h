#ifndef MJOIN_PLAN_SEGMENTS_H_
#define MJOIN_PLAN_SEGMENTS_H_

#include <string>
#include <vector>

#include "plan/join_tree.h"

namespace mjoin {

/// One right-deep segment of a bushy tree (Figure 5, [CLY92]): a maximal
/// chain of joins linked through *right* (probe) children. Within a
/// segment all build operands can be hashed in parallel and the probe
/// stream is pipelined bottom-to-top; the bottom join's probe operand is
/// always a base relation (right chains only stop at leaves).
struct RightDeepSegment {
  int id = -1;
  /// Join node ids bottom-to-top along the right chain.
  std::vector<int> joins;
  /// Consumer segment (the segment containing the join whose *left*
  /// operand is this segment's result); -1 for the root segment.
  int parent = -1;
  /// Producer segments feeding left operands of this segment's joins.
  std::vector<int> children;
  /// Sum of join costs within the segment (requires an annotated tree).
  double total_cost = 0;
  /// total_cost plus all producers' subtree costs.
  double subtree_cost = 0;
  /// When >= 0, this segment's bottom join probes the *stored result* of
  /// the given (lower) segment instead of a base relation: the chain was
  /// split because its build tables would not fit in memory together —
  /// [CLY92]'s memory-constrained segmentation. The lower segment also
  /// appears in `children` (it must complete first).
  int probe_from = -1;
};

/// Decomposition of a join tree into right-deep segments.
class SegmentedTree {
 public:
  /// `tree` must be annotated (TotalCostModel::Annotate) and have at least
  /// one join. With `max_build_tuples_per_segment` > 0, right-deep chains
  /// are further split bottom-to-top so that the sum of build-operand
  /// cardinalities within each segment stays within the budget ([CLY92]'s
  /// memory-driven segmentation); split points turn into
  /// stored-result/probe handoffs (see RightDeepSegment::probe_from).
  static SegmentedTree Build(const JoinTree& tree,
                             double max_build_tuples_per_segment = 0);

  const std::vector<RightDeepSegment>& segments() const { return segments_; }
  int root_segment() const { return root_segment_; }
  /// Segment containing join node `join_id`.
  int segment_of(int join_id) const { return segment_of_[join_id]; }

  std::string ToString(const JoinTree& tree) const;

 private:
  std::vector<RightDeepSegment> segments_;
  std::vector<int> segment_of_;
  int root_segment_ = -1;
};

}  // namespace mjoin

#endif  // MJOIN_PLAN_SEGMENTS_H_
