#include "net/wire.h"

#include <cstring>

#include "common/string_util.h"
#include "xra/plan.h"

namespace mjoin {

namespace {

/// CRC-32 lookup table for the IEEE polynomial, built on first use.
const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t entries[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? 0xEDB8'8320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
    return entries;
  }();
  return table;
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
#define MJOIN_FRAME_NAME_ROW(id, name, wire, klass, dirs, phases, next) \
  case FrameType::k##name:                                              \
    return wire;
    MJOIN_FRAME_TABLE(MJOIN_FRAME_NAME_ROW)
#undef MJOIN_FRAME_NAME_ROW
  }
  return "unknown";
}

bool ValidFrameType(uint8_t raw) {
  switch (static_cast<FrameType>(raw)) {
#define MJOIN_FRAME_VALID_ROW(id, name, wire, klass, dirs, phases, next) \
  case FrameType::k##name:                                               \
    return true;
    MJOIN_FRAME_TABLE(MJOIN_FRAME_VALID_ROW)
#undef MJOIN_FRAME_VALID_ROW
  }
  return false;
}

uint32_t FrameDirs(FrameType type) {
  switch (type) {
#define MJOIN_FRAME_DIRS_ROW(id, name, wire, klass, dirs, phases, next) \
  case FrameType::k##name:                                              \
    return dirs;
    MJOIN_FRAME_TABLE(MJOIN_FRAME_DIRS_ROW)
#undef MJOIN_FRAME_DIRS_ROW
  }
  return 0;
}

uint32_t FramePhases(FrameType type) {
  switch (type) {
#define MJOIN_FRAME_PHASES_ROW(id, name, wire, klass, dirs, phases, next) \
  case FrameType::k##name:                                                \
    return phases;
    MJOIN_FRAME_TABLE(MJOIN_FRAME_PHASES_ROW)
#undef MJOIN_FRAME_PHASES_ROW
  }
  return 0;
}

// `next` is a bare phase token (or Keep); map it through these constants.
namespace {
inline constexpr uint32_t kPhNextKeep = kPhKeep;
inline constexpr uint32_t kPhNextAwaitPlan = kPhAwaitPlan;
inline constexpr uint32_t kPhNextHandshake = kPhHandshake;
inline constexpr uint32_t kPhNextExecute = kPhExecute;
inline constexpr uint32_t kPhNextReport = kPhReport;
inline constexpr uint32_t kPhNextDone = kPhDone;
}  // namespace

uint32_t FrameNextPhase(FrameType type) {
  switch (type) {
#define MJOIN_FRAME_NEXT_ROW(id, name, wire, klass, dirs, phases, next) \
  case FrameType::k##name:                                              \
    return kPhNext##next;
    MJOIN_FRAME_TABLE(MJOIN_FRAME_NEXT_ROW)
#undef MJOIN_FRAME_NEXT_ROW
  }
  return kPhKeep;
}

uint32_t Crc32(const std::byte* data, size_t size) {
  const uint32_t* table = Crc32Table();
  uint32_t crc = 0xFFFF'FFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ static_cast<uint8_t>(data[i])) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFF'FFFFu;
}

void PutU8(std::vector<std::byte>* out, uint8_t v) {
  out->push_back(static_cast<std::byte>(v));
}

void PutU16(std::vector<std::byte>* out, uint16_t v) {
  PutU8(out, static_cast<uint8_t>(v));
  PutU8(out, static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<std::byte>* out, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    PutU8(out, static_cast<uint8_t>(v >> shift));
  }
}

void PutU64(std::vector<std::byte>* out, uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    PutU8(out, static_cast<uint8_t>(v >> shift));
  }
}

void PutI32(std::vector<std::byte>* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutI64(std::vector<std::byte>* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::vector<std::byte>* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::vector<std::byte>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  const std::byte* data = reinterpret_cast<const std::byte*>(s.data());
  out->insert(out->end(), data, data + s.size());
}

Status WireReader::ReadBytes(size_t size, const std::byte** data) {
  if (remaining() < size) {
    return Status::OutOfRange(
        StrCat("wire payload truncated: need ", size, " bytes, have ",
               remaining()));
  }
  *data = data_ + pos_;
  pos_ += size;
  return Status::OK();
}

Status WireReader::ReadU8(uint8_t* v) {
  const std::byte* p;
  MJOIN_RETURN_IF_ERROR(ReadBytes(1, &p));
  *v = static_cast<uint8_t>(p[0]);
  return Status::OK();
}

Status WireReader::ReadU16(uint16_t* v) {
  const std::byte* p;
  MJOIN_RETURN_IF_ERROR(ReadBytes(2, &p));
  *v = static_cast<uint16_t>(static_cast<uint8_t>(p[0]) |
                             static_cast<uint16_t>(static_cast<uint8_t>(p[1]))
                                 << 8);
  return Status::OK();
}

Status WireReader::ReadU32(uint32_t* v) {
  const std::byte* p;
  MJOIN_RETURN_IF_ERROR(ReadBytes(4, &p));
  uint32_t out = 0;
  for (int i = 3; i >= 0; --i) {
    out = (out << 8) | static_cast<uint8_t>(p[i]);
  }
  *v = out;
  return Status::OK();
}

Status WireReader::ReadU64(uint64_t* v) {
  const std::byte* p;
  MJOIN_RETURN_IF_ERROR(ReadBytes(8, &p));
  uint64_t out = 0;
  for (int i = 7; i >= 0; --i) {
    out = (out << 8) | static_cast<uint8_t>(p[i]);
  }
  *v = out;
  return Status::OK();
}

Status WireReader::ReadI32(int32_t* v) {
  uint32_t raw;
  MJOIN_RETURN_IF_ERROR(ReadU32(&raw));
  *v = static_cast<int32_t>(raw);
  return Status::OK();
}

Status WireReader::ReadI64(int64_t* v) {
  uint64_t raw;
  MJOIN_RETURN_IF_ERROR(ReadU64(&raw));
  *v = static_cast<int64_t>(raw);
  return Status::OK();
}

Status WireReader::ReadF64(double* v) {
  uint64_t bits;
  MJOIN_RETURN_IF_ERROR(ReadU64(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::OK();
}

Status WireReader::ReadString(std::string* s) {
  uint32_t size;
  MJOIN_RETURN_IF_ERROR(ReadU32(&size));
  const std::byte* p;
  MJOIN_RETURN_IF_ERROR(ReadBytes(size, &p));
  s->assign(reinterpret_cast<const char*>(p), size);
  return Status::OK();
}

SchemaRegistry::SchemaRegistry(const ParallelPlan& plan) {
  for (const XraOp& op : plan.ops) {
    Intern(op.input_schema);
    Intern(op.output_schema);
  }
}

void SchemaRegistry::Intern(const std::shared_ptr<const Schema>& schema) {
  if (schema == nullptr) return;
  for (const auto& known : schemas_) {
    if (*known == *schema) return;
  }
  schemas_.push_back(schema);
}

StatusOr<uint32_t> SchemaRegistry::IdOf(const Schema& schema) const {
  for (size_t i = 0; i < schemas_.size(); ++i) {
    if (*schemas_[i] == schema) return static_cast<uint32_t>(i);
  }
  return Status::NotFound(
      StrCat("schema not declared by the plan: ", schema.ToString()));
}

size_t BatchWireSize(uint32_t tuple_size, size_t count) {
  // magic + version + flags + schema_id + tuple_size + num_tuples + rows
  // + crc.
  return 4 + 2 + 2 + 4 + 4 + 4 + count * tuple_size + 4;
}

void AppendRowsWire(uint32_t schema_id, uint32_t tuple_size,
                    const std::byte* rows, size_t count,
                    std::vector<std::byte>* out) {
  size_t start = out->size();
  out->reserve(start + BatchWireSize(tuple_size, count));
  PutU32(out, kBatchWireMagic);
  PutU16(out, kBatchWireVersion);
  PutU16(out, 0);  // flags
  PutU32(out, schema_id);
  PutU32(out, tuple_size);
  PutU32(out, static_cast<uint32_t>(count));
  out->insert(out->end(), rows, rows + count * tuple_size);
  PutU32(out, Crc32(out->data() + start, out->size() - start));
}

void AppendBatchWire(const TupleBatch& batch, uint32_t schema_id,
                     std::vector<std::byte>* out) {
  AppendRowsWire(schema_id, batch.schema().tuple_size(), batch.raw_data(),
                 batch.num_tuples(), out);
}

Status ReadBatchWire(WireReader* reader, const SchemaRegistry& registry,
                     TupleBatch* out) {
  const std::byte* start = reader->cursor();
  uint32_t magic, schema_id, tuple_size, num_tuples;
  uint16_t version, flags;
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&magic));
  if (magic != kBatchWireMagic) {
    return Status::InvalidArgument(
        StrCat("batch wire magic mismatch: got ", magic));
  }
  MJOIN_RETURN_IF_ERROR(reader->ReadU16(&version));
  if (version != kBatchWireVersion) {
    return Status::InvalidArgument(
        StrCat("unsupported batch wire version ", version));
  }
  MJOIN_RETURN_IF_ERROR(reader->ReadU16(&flags));
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&schema_id));
  if (schema_id >= registry.size()) {
    return Status::InvalidArgument(
        StrCat("batch schema id ", schema_id, " out of range (",
               registry.size(), " schemas)"));
  }
  const std::shared_ptr<const Schema>& schema = registry.Get(schema_id);
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&tuple_size));
  if (tuple_size != schema->tuple_size()) {
    return Status::InvalidArgument(
        StrCat("batch tuple size ", tuple_size, " disagrees with schema ",
               schema_id, " (", schema->tuple_size(), " bytes)"));
  }
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&num_tuples));
  const std::byte* rows;
  MJOIN_RETURN_IF_ERROR(
      reader->ReadBytes(static_cast<size_t>(num_tuples) * tuple_size, &rows));
  uint32_t crc;
  size_t covered = static_cast<size_t>(reader->cursor() - start);
  MJOIN_RETURN_IF_ERROR(reader->ReadU32(&crc));
  uint32_t actual = Crc32(start, covered);
  if (crc != actual) {
    return Status::InvalidArgument(StrCat("batch CRC mismatch: frame says ",
                                          crc, ", payload hashes to ",
                                          actual));
  }
  out->ResetSchema(schema);
  out->AppendRows(rows, num_tuples);
  return Status::OK();
}

}  // namespace mjoin
