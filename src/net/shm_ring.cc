#include "net/shm_ring.h"

#include <sys/eventfd.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cstring>

namespace mjoin {
namespace {

constexpr uint32_t kMinRingBytes = 4096;

uint32_t PadUp(uint32_t bytes) {
  return (bytes + kShmRecordAlign - 1) & ~(kShmRecordAlign - 1);
}

bool IsPowerOfTwo(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

bool ValidRecordType(uint32_t raw) {
  switch (static_cast<ShmRecordType>(raw)) {
    case ShmRecordType::kData:
    case ShmRecordType::kEos:
    case ShmRecordType::kFragment:
    case ShmRecordType::kResultRows:
    case ShmRecordType::kPad:
      return true;
  }
  return false;
}

// Local FNV-1a; the net layer cannot reach the engine's FnvHash64 without
// an upward dependency.
uint64_t FnvMix(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (i * 8)) & 0xFFu;
    hash *= 0x100'0000'01B3ull;
  }
  return hash;
}

}  // namespace

const char* ShmRecordTypeName(ShmRecordType type) {
  switch (type) {
    case ShmRecordType::kData:
      return "Data";
    case ShmRecordType::kEos:
      return "Eos";
    case ShmRecordType::kFragment:
      return "Fragment";
    case ShmRecordType::kResultRows:
      return "ResultRows";
    case ShmRecordType::kPad:
      return "Pad";
  }
  return "?";
}

void ShmRing::Init(std::byte* mem, uint32_t data_bytes) {
  // lint:allow-new placement-construction of the shared ring header
  hdr_ = new (mem) ShmRingHdr{};
  hdr_->magic = kShmRingMagic;
  hdr_->version = kShmRingVersion;
  hdr_->data_bytes = data_bytes;
  hdr_->tail.store(0, std::memory_order_relaxed);
  hdr_->head.store(0, std::memory_order_relaxed);
  data_ = mem + sizeof(ShmRingHdr);
  data_bytes_ = data_bytes;
  mask_ = data_bytes - 1;
}

Status ShmRing::Attach(std::byte* mem) {
  auto* hdr = reinterpret_cast<ShmRingHdr*>(mem);
  if (hdr->magic != kShmRingMagic) {
    return Status::Unavailable("corrupt shm ring: bad magic");
  }
  if (hdr->version != kShmRingVersion) {
    return Status::Unavailable("corrupt shm ring: version mismatch");
  }
  if (!IsPowerOfTwo(hdr->data_bytes) || hdr->data_bytes < kMinRingBytes) {
    return Status::Unavailable("corrupt shm ring: bad data_bytes");
  }
  hdr_ = hdr;
  data_ = mem + sizeof(ShmRingHdr);
  data_bytes_ = hdr->data_bytes;
  mask_ = data_bytes_ - 1;
  return Status::OK();
}

std::byte* ShmRing::TryReserve(uint32_t payload_bytes) {
  const uint32_t rec = kShmRecordHdrBytes + PadUp(payload_bytes);
  uint64_t tail = hdr_->tail.load(std::memory_order_relaxed);
  uint64_t head = hdr_->head.load(std::memory_order_acquire);
  uint64_t avail = data_bytes_ - (tail - head);
  uint32_t to_end = data_bytes_ - static_cast<uint32_t>(tail & mask_);
  // Mutation kStraddleRecord relaxes the wrap threshold by one alignment
  // unit, letting a maximal record straddle the end of the data region.
  const uint32_t wrap_threshold =
      MJOIN_SHM_MUTATION(kStraddleRecord) ? to_end + kShmRecordAlign : to_end;
  if (rec > wrap_threshold) {
    // The record would straddle the wrap point: publish a pad covering the
    // remainder so the real record can start at offset 0. Publishing the
    // pad eagerly (instead of bundling it with the reservation) guarantees
    // progress — the consumer swallows the pad, and once the ring drains
    // the next reservation starts at a clean wrap.
    // Mutation kPadOverwrite drops the refusal, so the pad tramples
    // records the consumer has not released yet.
    if (to_end > avail && !MJOIN_SHM_MUTATION(kPadOverwrite)) return nullptr;
    auto* pad = reinterpret_cast<uint32_t*>(data_ + (tail & mask_));
    ShmStoreU32(&pad[0], to_end - kShmRecordHdrBytes);
    ShmStoreU32(&pad[1], static_cast<uint32_t>(ShmRecordType::kPad));
    tail += to_end;
    avail -= to_end;
    hdr_->tail.store(tail, std::memory_order_release);
  }
  // Mutation kOverclaimAvail admits a record one alignment unit larger
  // than the free space, so the reservation overlaps unreleased records.
  const uint64_t claimable =
      MJOIN_SHM_MUTATION(kOverclaimAvail) ? avail + kShmRecordAlign : avail;
  if (rec > claimable) return nullptr;
  pending_base_ = tail;
  pending_rec_ = rec;
  return data_ + (tail & mask_) + kShmRecordHdrBytes;
}

void ShmRing::Commit(ShmRecordType type, uint32_t payload_bytes) {
  auto* hdr = reinterpret_cast<uint32_t*>(data_ + (pending_base_ & mask_));
  if (MJOIN_SHM_MUTATION(kPublishBeforeWrite)) {
    // Mutation: the record is published before its header exists, so a
    // consumer scheduled between the two stores reads garbage.
    hdr_->tail.store(pending_base_ + pending_rec_, std::memory_order_release);
    ShmStoreU32(&hdr[0], payload_bytes);
    ShmStoreU32(&hdr[1], static_cast<uint32_t>(type));
    return;
  }
  ShmStoreU32(&hdr[0], payload_bytes);
  ShmStoreU32(&hdr[1], static_cast<uint32_t>(type));
  // The release publishes the header and every payload byte written since
  // TryReserve; until this store the record is invisible, which is what
  // makes a producer killed mid-write harmless. Mutation
  // kCommitTailRelaxed drops the release, so the cursor may become
  // visible before the bytes it publishes.
  hdr_->tail.store(pending_base_ + pending_rec_,
                   MJOIN_SHM_MUTATION(kCommitTailRelaxed)
                       ? std::memory_order_relaxed
                       : std::memory_order_release);
}

bool ShmRing::TryPush(ShmRecordType type, const void* hdr, size_t hdr_bytes,
                      const void* body, size_t body_bytes) {
  const uint32_t payload = static_cast<uint32_t>(hdr_bytes + body_bytes);
  std::byte* slot = TryReserve(payload);
  if (slot == nullptr) return false;
  if (hdr_bytes > 0) ShmCopyIn(slot, hdr, hdr_bytes);
  if (body_bytes > 0) ShmCopyIn(slot + hdr_bytes, body, body_bytes);
  Commit(type, payload);
  return true;
}

StatusOr<bool> ShmRing::TryRead(ShmRecordView* out) {
  uint64_t head = hdr_->head.load(std::memory_order_relaxed);
  for (;;) {
    // Mutation kReadTailRelaxed drops the acquire, so the record bytes the
    // cursor claims to publish may not be visible yet.
    const uint64_t tail =
        hdr_->tail.load(MJOIN_SHM_MUTATION(kReadTailRelaxed)
                            ? std::memory_order_relaxed
                            : std::memory_order_acquire);
    if (tail - head > data_bytes_) {
      return Status::Unavailable("corrupt shm ring: cursors out of bounds");
    }
    if (head == tail) return false;
    const uint32_t off = static_cast<uint32_t>(head & mask_);
    const auto* hdr = reinterpret_cast<const uint32_t*>(data_ + off);
    const uint32_t payload_bytes = ShmLoadU32(&hdr[0]);
    const uint32_t type = ShmLoadU32(&hdr[1]);
    const uint32_t rec = kShmRecordHdrBytes + PadUp(payload_bytes);
    // `rec > tail - head` (never `head + rec > tail`): cursors are free-
    // running u64 counters, so near-2^64 values make `head + rec` wrap to
    // a small number while the modular difference stays correct. Mutation
    // kWrapUnsafeCompare restores the overflowing form.
    const bool overclaims = MJOIN_SHM_MUTATION(kWrapUnsafeCompare)
                                ? head + rec > tail
                                : rec > tail - head;
    if (!ValidRecordType(type) || payload_bytes > data_bytes_ ||
        off + rec > data_bytes_ || overclaims) {
      return Status::Unavailable("corrupt shm ring: bad record header");
    }
    if (static_cast<ShmRecordType>(type) == ShmRecordType::kPad) {
      head += rec;
      // Mutation kPadSkipNoRelease keeps the pad's space from the
      // producer: harmless while records follow (the next Release covers
      // it), but a ring drained right after a pad never returns it.
      if (!MJOIN_SHM_MUTATION(kPadSkipNoRelease)) {
        hdr_->head.store(head, std::memory_order_release);
      }
      continue;
    }
    out->type = static_cast<ShmRecordType>(type);
    out->payload = data_ + off + kShmRecordHdrBytes;
    out->payload_bytes = payload_bytes;
    pending_release_ = head + rec;
    return true;
  }
}

void ShmRing::Release() {
  hdr_->head.store(pending_release_, std::memory_order_release);
}

ShmArena::~ShmArena() {
  for (int fd : doorbells_) {
    if (fd >= 0) close(fd);
  }
  if (region_ != nullptr) munmap(region_, region_bytes_);
}

StatusOr<std::unique_ptr<ShmArena>> ShmArena::Create(uint32_t num_endpoints,
                                                     size_t bytes) {
  if (bytes == 0) {
    return Status::InvalidArgument("shm arena bytes must be positive");
  }
  auto arena = std::make_unique<ShmArena>();
  arena->num_endpoints_ = num_endpoints;
  // MAP_POPULATE prefaults the whole region once, pre-fork; every fleet
  // member inherits the populated page tables for its entire life.
  void* mem = mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS | MAP_POPULATE, -1, 0);
  if (mem == MAP_FAILED) {
    return Status::ResourceExhausted("mmap of shm arena failed");
  }
  arena->region_ = static_cast<std::byte*>(mem);
  arena->region_bytes_ = bytes;
  arena->doorbells_.assign(num_endpoints, -1);
  for (uint32_t e = 0; e < num_endpoints; ++e) {
    const int fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (fd < 0) {
      return Status::ResourceExhausted("eventfd for shm doorbell failed");
    }
    arena->doorbells_[e] = fd;
  }
  return StatusOr<std::unique_ptr<ShmArena>>(std::move(arena));
}

ShmDataPlane::~ShmDataPlane() {
  if (!owns_resources_) return;
  for (int fd : doorbells_) {
    if (fd >= 0) close(fd);
  }
  if (region_ != nullptr) munmap(region_, region_bytes_);
}

uint64_t ShmDataPlane::HashDirectory(const std::vector<ShmRingSpec>& specs,
                                     uint32_t num_endpoints,
                                     uint32_t ring_bytes) {
  uint64_t hash = 0xCBF2'9CE4'8422'2325ull;
  hash = FnvMix(hash, num_endpoints);
  hash = FnvMix(hash, ring_bytes);
  for (const ShmRingSpec& spec : specs) {
    hash = FnvMix(hash, (uint64_t{spec.from} << 32) | spec.to);
  }
  return hash;
}

Status ShmDataPlane::IndexSpecs(std::vector<ShmRingSpec> specs) {
  inbound_.assign(num_endpoints_, {});
  index_.clear();
  for (size_t i = 0; i < specs.size(); ++i) {
    const ShmRingSpec& spec = specs[i];
    if (spec.from >= num_endpoints_ || spec.to >= num_endpoints_ ||
        spec.from == spec.to) {
      return Status::InvalidArgument("shm ring spec endpoint out of range");
    }
    const uint64_t key = (uint64_t{spec.from} << 32) | spec.to;
    if (!index_.emplace(key, i).second) {
      return Status::InvalidArgument("duplicate shm ring spec");
    }
    inbound_[spec.to].push_back(i);
  }
  specs_ = std::move(specs);
  return Status::OK();
}

StatusOr<std::unique_ptr<ShmDataPlane>> ShmDataPlane::Create(
    std::vector<ShmRingSpec> specs, uint32_t num_endpoints,
    uint32_t ring_bytes) {
  if (!IsPowerOfTwo(ring_bytes) || ring_bytes < kMinRingBytes) {
    return Status::InvalidArgument("shm ring_bytes must be a power of two "
                                   ">= 4096");
  }
  auto plane = std::make_unique<ShmDataPlane>();
  plane->num_endpoints_ = num_endpoints;
  plane->ring_bytes_ = ring_bytes;
  plane->directory_hash_ = HashDirectory(specs, num_endpoints, ring_bytes);
  MJOIN_RETURN_IF_ERROR(plane->IndexSpecs(std::move(specs)));

  const size_t slot = sizeof(ShmRingHdr) + ring_bytes;
  plane->region_bytes_ = slot * plane->specs_.size();
  if (plane->region_bytes_ > 0) {
    // MAP_POPULATE prefaults the whole region in the coordinator before
    // the fleet forks; the children inherit the populated page tables, so
    // no worker ever soft-faults on ring traffic mid-query.
    void* mem = mmap(nullptr, plane->region_bytes_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS | MAP_POPULATE, -1, 0);
    if (mem == MAP_FAILED) {
      plane->region_bytes_ = 0;
      return Status::ResourceExhausted("mmap of shm data plane failed");
    }
    plane->region_ = static_cast<std::byte*>(mem);
  }
  plane->rings_.resize(plane->specs_.size());
  for (size_t i = 0; i < plane->specs_.size(); ++i) {
    plane->rings_[i].Init(plane->region_ + i * slot, ring_bytes);
  }
  plane->doorbells_.assign(num_endpoints, -1);
  for (uint32_t e = 0; e < num_endpoints; ++e) {
    const int fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (fd < 0) {
      return Status::ResourceExhausted("eventfd for shm doorbell failed");
    }
    plane->doorbells_[e] = fd;
  }
  return StatusOr<std::unique_ptr<ShmDataPlane>>(std::move(plane));
}

StatusOr<std::unique_ptr<ShmDataPlane>> ShmDataPlane::CreateInArena(
    ShmArena* arena, std::vector<ShmRingSpec> specs, uint32_t num_endpoints,
    uint32_t ring_bytes, bool format) {
  if (!IsPowerOfTwo(ring_bytes) || ring_bytes < kMinRingBytes) {
    return Status::InvalidArgument("shm ring_bytes must be a power of two "
                                   ">= 4096");
  }
  if (num_endpoints != arena->num_endpoints()) {
    return Status::InvalidArgument(
        "shm plane endpoint count disagrees with the arena's");
  }
  const size_t slot = sizeof(ShmRingHdr) + ring_bytes;
  if (slot * specs.size() > arena->bytes()) {
    return Status::ResourceExhausted(
        "the plan's ring directory does not fit the warm fleet's arena");
  }
  auto plane = std::make_unique<ShmDataPlane>();
  plane->owns_resources_ = false;
  plane->num_endpoints_ = num_endpoints;
  plane->ring_bytes_ = ring_bytes;
  plane->directory_hash_ = HashDirectory(specs, num_endpoints, ring_bytes);
  MJOIN_RETURN_IF_ERROR(plane->IndexSpecs(std::move(specs)));
  plane->region_ = arena->base();
  plane->region_bytes_ = 0;  // borrowed; never unmapped by this view
  plane->rings_.resize(plane->specs_.size());
  for (size_t i = 0; i < plane->specs_.size(); ++i) {
    std::byte* mem = arena->base() + i * slot;
    if (format) {
      plane->rings_[i].Init(mem, ring_bytes);
    } else {
      MJOIN_RETURN_IF_ERROR(plane->rings_[i].Attach(mem));
    }
  }
  plane->doorbells_ = arena->doorbells();
  return StatusOr<std::unique_ptr<ShmDataPlane>>(std::move(plane));
}

ShmRing* ShmDataPlane::RingTo(uint32_t from, uint32_t to) {
  auto it = index_.find((uint64_t{from} << 32) | to);
  if (it == index_.end()) return nullptr;
  return &rings_[it->second];
}

size_t ShmDataPlane::RingIndexTo(uint32_t from, uint32_t to) const {
  auto it = index_.find((uint64_t{from} << 32) | to);
  return it == index_.end() ? kNoShmRing : it->second;
}

void ShmDataPlane::RingDoorbell(uint32_t endpoint) {
  // A full counter (EAGAIN) already wakes the poller; any other failure
  // degrades to the poll timeout, never to a lost record.
  (void)eventfd_write(doorbells_[endpoint], 1);
}

void ShmDataPlane::DrainDoorbell(uint32_t endpoint) {
  eventfd_t value = 0;
  (void)eventfd_read(doorbells_[endpoint], &value);
}

}  // namespace mjoin
