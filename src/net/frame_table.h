#ifndef MJOIN_NET_FRAME_TABLE_H_
#define MJOIN_NET_FRAME_TABLE_H_

#include <cstdint>

/// The single source of truth for the frame protocol's type table.
///
/// Every wire frame is one row of MJOIN_FRAME_TABLE. The row drives, from
/// this one definition site:
///
///   - the FrameType enum itself (net/wire.h),
///   - FrameTypeName() and ValidFrameType() (net/wire.cc),
///   - the per-frame direction and protocol-phase metadata consumed by the
///     runtime conformance checker (net/frame_conformance.{h,cc}),
///   - the MJOIN_FRAME_CASES(...) case-label generators that give frame
///     handlers their "frames that never arrive here" switch arms, so a
///     new frame type extends every handler's -Wswitch coverage without
///     any hand-maintained enumeration,
///   - tools/mjoin_lint.py's exhaustive-switch check, which parses this
///     table (not the generated enum) for the member list and the
///     MJOIN_FRAME_CASES expansions.
///
/// Adding a frame means adding one row here; the compiler (-Wswitch on the
/// handler switches) and the lint then point at every site that must make
/// a routing decision for it.
///
/// Row shape:
///
///   X(id, Name, "wire-name", KLASS, dirs, phases, next)
///
///   id      the FrameType wire value (never reuse a retired id)
///   Name    enum member name without the leading k
///   KLASS   routing class, a single token used by the case-label
///           filters: CW (coordinator->worker), WC (worker->coordinator),
///           ROUTED (coordinator-relayed worker<->worker traffic, handled
///           by both endpoints), SERVE (serve-layer client<->server). A
///           frame's class is where it is *handled*; `dirs` below is the
///           full set of legal wire directions (kBye is class WC but also
///           travels client->server on serve links).
///   dirs    bitmask of legal travel directions (FrameDir)
///   phases  bitmask of link phases the frame may be observed in
///           (FramePhase); the conformance checker enforces this per
///           connection in both directions
///   next    link phase the frame advances the connection to, or Keep
namespace mjoin {

/// Conformance phases of one coordinator<->worker link (a serve link sits
/// permanently in kPhServe). A link starts in kPhAwaitPlan; table `next`
/// entries advance it. Warm fleets loop: kIdle returns the link to
/// kPhAwaitPlan for the next query's kPlan.
enum FramePhase : uint32_t {
  kPhAwaitPlan = 1u << 0,  // parked; no query in flight
  kPhHandshake = 1u << 1,  // kPlan shipped, kHello not yet observed
  kPhExecute = 1u << 2,    // fragments/triggers/data/milestones flowing
  kPhReport = 1u << 3,     // kFinish observed; stats and results inbound
  kPhDone = 1u << 4,       // kShutdown observed
  kPhServe = 1u << 5,      // serve-layer client connection
};

/// Phase-transition sentinel: the frame leaves the link's phase alone.
inline constexpr uint32_t kPhKeep = 0;

/// Every worker-link phase; heartbeats and shutdown are legal throughout.
inline constexpr uint32_t kPhAnyWorker =
    kPhAwaitPlan | kPhHandshake | kPhExecute | kPhReport | kPhDone;

/// Legal travel directions of a frame, independent of where it is handled.
enum FrameDir : uint32_t {
  kDirToWorker = 1u << 0,       // coordinator -> worker
  kDirToCoordinator = 1u << 1,  // worker -> coordinator
  kDirToServer = 1u << 2,       // serve client -> server
  kDirToClient = 1u << 3,       // serve server -> client
};

// clang-format off
#define MJOIN_FRAME_TABLE(X)                                                   \
  /* worker -> coordinator: protocol version + echo hash of the plan text   */ \
  /* the worker parsed (the coordinator verifies the handshake round trip)  */ \
  /* plus the shm ring-directory hash the worker derived from its parse.    */ \
  X(1, Hello, "hello", WC, kDirToCoordinator, kPhHandshake, Execute)           \
  /* coordinator -> worker: run options + the plan in textual XRA.          */ \
  X(2, Plan, "plan", CW, kDirToWorker, kPhAwaitPlan, Handshake)                \
  /* coordinator -> worker: one chunk of a scan instance's base-relation    */ \
  /* fragment (op, instance, wire batch). All fragments precede triggers.   */ \
  /* Legal during kPhHandshake too: the coordinator pipelines fragments     */ \
  /* behind kPlan without waiting for the kHello echo.                      */ \
  X(3, Fragment, "fragment", CW, kDirToWorker,                                 \
    kPhHandshake | kPhExecute, Keep)                                           \
  /* coordinator -> worker: start every hosted instance of a trigger group. */ \
  X(4, Trigger, "trigger", CW, kDirToWorker,                                   \
    kPhHandshake | kPhExecute, Keep)                                           \
  /* data batch toward a consumer instance; routed by the coordinator       */ \
  /* (worker -> coordinator -> worker), so both directions are legal.       */ \
  /* kPhHandshake: an early producer's output may be relayed to a consumer  */ \
  /* whose kHello echo is still in flight. kPhReport: routed frames held    */ \
  /* for credit may drain after kFinish.                                    */ \
  X(5, Data, "data", ROUTED, kDirToCoordinator | kDirToWorker,                 \
    kPhHandshake | kPhExecute | kPhReport, Keep)                               \
  /* end-of-stream from one producer instance to one consumer instance;     */ \
  /* routed like kData (and ordered behind it), but consumes no credit.     */ \
  X(6, Eos, "eos", ROUTED, kDirToCoordinator | kDirToWorker,                   \
    kPhHandshake | kPhExecute | kPhReport, Keep)                               \
  /* worker -> coordinator: instance milestone for the scheduler.           */ \
  X(7, Milestone, "milestone", WC, kDirToCoordinator,                          \
    kPhExecute | kPhReport, Keep)                                              \
  /* worker -> coordinator: the worker finished processing `count` data     */ \
  /* frames; the coordinator releases that much of its credit window.       */ \
  X(8, Credit, "credit", WC, kDirToCoordinator,                                \
    kPhExecute | kPhReport, Keep)                                              \
  /* coordinator -> worker: the plan completed; report results and stats.   */ \
  X(9, Finish, "finish", CW, kDirToWorker, kPhExecute, Report)                 \
  /* worker -> coordinator: partial ResultSummary of a stored result.       */ \
  X(10, Summary, "summary", WC, kDirToCoordinator, kPhReport, Keep)            \
  /* worker -> coordinator: final-result rows (only when materializing).    */ \
  X(11, ResultRows, "result-rows", WC, kDirToCoordinator, kPhReport, Keep)     \
  /* worker -> coordinator: merged OpMetrics of one hosted op.              */ \
  X(12, OpStats, "op-stats", WC, kDirToCoordinator, kPhReport, Keep)           \
  /* worker -> coordinator: the worker's run counters (serialize seconds,   */ \
  /* local deliveries, faults injected, peak memory, ...).                  */ \
  X(13, NetStats, "net-stats", WC, kDirToCoordinator, kPhReport, Keep)         \
  /* worker -> coordinator: recorded trace intervals.                       */ \
  X(14, TraceEvents, "trace-events", WC, kDirToCoordinator, kPhReport, Keep)   \
  /* worker -> coordinator: fatal worker-side status; the run aborts. Legal */ \
  /* from the moment the worker has a plan to fail (kPhHandshake on).       */ \
  X(15, Error, "error", WC, kDirToCoordinator,                                 \
    kPhHandshake | kPhExecute | kPhReport, Keep)                               \
  /* worker -> coordinator: finish-phase reporting done, awaiting shutdown. */ \
  /* Also serve client -> server: connection close notice.                  */ \
  X(16, Bye, "bye", WC, kDirToCoordinator | kDirToServer,                      \
    kPhReport | kPhServe, Keep)                                                \
  /* coordinator -> worker: exit cleanly. Legal in every phase: teardown    */ \
  /* and abort paths may shut a link down at any point in its life.         */ \
  X(17, Shutdown, "shutdown", CW, kDirToWorker, kPhAnyWorker, Done)            \
  /* coordinator -> worker: liveness probe (HeartbeatMsg). A worker answers */ \
  /* every ping with a kPong immediately; the coordinator's watchdog treats */ \
  /* prolonged silence as a hung worker.                                    */ \
  X(18, Ping, "ping", CW, kDirToWorker, kPhAnyWorker, Keep)                    \
  /* worker -> coordinator: echo of a kPing's sequence number.              */ \
  X(19, Pong, "pong", WC, kDirToCoordinator, kPhAnyWorker, Keep)               \
  /* client -> server (mjoin_serve): submit one query (SubmitMsg — tenant,  */ \
  /* backend, plan text, per-query limits). A connection may pipeline       */ \
  /* submits; results come back in completion order, matched by client_seq. */ \
  X(20, Submit, "submit", SERVE, kDirToServer, kPhServe, Keep)                 \
  /* server -> client: outcome of one kSubmit (QueryResultMsg — status,     */ \
  /* result summary, wall/queue seconds, cache/backend provenance).         */ \
  X(21, QueryResult, "query-result", SERVE, kDirToClient, kPhServe, Keep)      \
  /* worker -> coordinator (persistent fleets only): the worker tore down   */ \
  /* the previous query's state and is parked waiting for the next kPlan.   */ \
  /* Returns the link to kPhAwaitPlan for the next query.                   */ \
  X(22, Idle, "idle", WC, kDirToCoordinator, kPhReport, AwaitPlan)             \
  /* worker -> coordinator: one defended join instance's build-side skew    */ \
  /* summary (SkewReportMsg — heavy-hitter candidates with their build rows */ \
  /* inline, plus the instance's build-key Bloom filter).                   */ \
  X(23, SkewReport, "skew-report", WC, kDirToCoordinator, kPhExecute, Keep)    \
  /* coordinator -> worker: the merged plan of action for one defended join */ \
  /* (SkewDirectiveMsg — hot keys, replicated build rows, OR'd Bloom).      */ \
  /* kPhHandshake: the directive is broadcast to every host of the join,    */ \
  /* including (on a respawned fleet) one whose kHello is still in flight.  */ \
  X(24, SkewDirective, "skew-directive", CW, kDirToWorker,                     \
    kPhHandshake | kPhExecute, Keep)
// clang-format on

/// MJOIN_FRAME_CASES(sel): case labels for every table row the selector
/// matches, for the "frames that never legitimately arrive here" arm of a
/// handler switch. Selectors:
///
///   NOT_CW   everything a worker never receives (classes WC and SERVE;
///            ROUTED frames arrive at both endpoints, so neither selector
///            emits them)
///   NOT_WC   everything a coordinator never receives (classes CW, SERVE)
///
/// The arm stays `default:`-free, so -Wswitch (and mjoin_lint, which
/// expands these selectors from the table) still flags any new frame type
/// that no handler has made a routing decision for.
#define MJOIN_FRAME_SEL_NOT_CW_CW(name)
#define MJOIN_FRAME_SEL_NOT_CW_WC(name) case ::mjoin::FrameType::k##name:
#define MJOIN_FRAME_SEL_NOT_CW_ROUTED(name)
#define MJOIN_FRAME_SEL_NOT_CW_SERVE(name) case ::mjoin::FrameType::k##name:
#define MJOIN_FRAME_SEL_NOT_WC_CW(name) case ::mjoin::FrameType::k##name:
#define MJOIN_FRAME_SEL_NOT_WC_WC(name)
#define MJOIN_FRAME_SEL_NOT_WC_ROUTED(name)
#define MJOIN_FRAME_SEL_NOT_WC_SERVE(name) case ::mjoin::FrameType::k##name:

#define MJOIN_FRAME_ROW_NOT_CW(id, name, wire, klass, dirs, phases, next) \
  MJOIN_FRAME_SEL_NOT_CW_##klass(name)
#define MJOIN_FRAME_ROW_NOT_WC(id, name, wire, klass, dirs, phases, next) \
  MJOIN_FRAME_SEL_NOT_WC_##klass(name)

#define MJOIN_FRAME_CASES(sel) MJOIN_FRAME_TABLE(MJOIN_FRAME_ROW_##sel)

}  // namespace mjoin

#endif  // MJOIN_NET_FRAME_TABLE_H_
