#ifndef MJOIN_NET_SHM_RING_H_
#define MJOIN_NET_SHM_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/statusor.h"
#include "net/shm_memory_model.h"

namespace mjoin {

/// The process backend's shared-memory data plane. Control frames (the
/// handshake, credits, heartbeats, the finish protocol) stay on the AF_UNIX
/// socket; bulk payloads move over mmap'd single-producer single-consumer
/// ring buffers created by the coordinator *before* forking the fleet, so
/// every worker inherits the same MAP_SHARED|MAP_ANONYMOUS region and the
/// same virtual addresses. "Serialize" onto a ring is a bounds-checked
/// memcpy of the batch's raw rows — the wire format is the in-memory
/// format.
///
/// Each ring carries a stream of 8-byte-aligned records:
///
///   u32  payload_bytes   bytes of payload that follow the header
///   u32  type            ShmRecordType
///   ...  payload         padded up to the next 8-byte boundary
///
/// A record never straddles the end of the data region: when the tail is
/// too close to the end, the producer publishes a kPad filler record
/// covering the remainder and the real record starts at offset 0.
///
/// Memory-ordering contract (the whole crash-safety story):
///   - the producer writes the record bytes, then publishes them with a
///     release store of the monotonic `tail` cursor;
///   - the consumer acquires `tail`, copies the payload out, then releases
///     the space with a release store of the monotonic `head` cursor.
/// A producer killed (SIGKILL) mid-write leaves `tail` unpublished, so a
/// half-written record is simply invisible — the consumer can never observe
/// torn payload bytes. Cursors are validated on every read; a cursor that
/// jumped backwards or a record that fails bounds/type checks reports
/// corrupt-wire kUnavailable, the same class the socket path uses.
enum class ShmRecordType : uint32_t {
  /// Routed data batch: ShmDataHeader + raw rows.
  kData = 1,
  /// End-of-stream marker: ShmEosHeader, no rows.
  kEos = 2,
  /// Base-relation fragment chunk (coordinator -> worker relay ring).
  kFragment = 3,
  /// Materialized final-result rows (worker -> coordinator relay ring).
  kResultRows = 4,
  /// Filler emitted to keep records contiguous across the wrap point.
  kPad = 5,
};

const char* ShmRecordTypeName(ShmRecordType type);

/// Per-ring shared header. `tail` and `head` live on their own cache lines
/// so the producer and consumer never false-share; both are *cursors*
/// (total bytes ever published/released), not offsets — offsets are the
/// cursor masked by data_bytes-1.
/// The cursor type is the ShmAtomicU64 seam alias: std::atomic<uint64_t>
/// in production, the model checker's instrumented atomic in mjoin_check
/// (see net/shm_memory_model.h).
struct ShmRingHdr {
  uint32_t magic;       // kShmRingMagic
  uint32_t version;     // kShmRingVersion
  uint32_t data_bytes;  // power of two
  uint32_t reserved;
  alignas(64) ShmAtomicU64 tail;  // producer-owned, release-stored
  alignas(64) ShmAtomicU64 head;  // consumer-owned, release-stored
};

inline constexpr uint32_t kShmRingMagic = 0x4252'4A4Du;  // "MJRB"
inline constexpr uint32_t kShmRingVersion = 1;
inline constexpr uint32_t kShmRecordAlign = 8;
inline constexpr uint32_t kShmRecordHdrBytes = 8;

// The cross-process contract: lock-free atomics on this platform are
// address-free, so the same ShmRingHdr works from every process mapping it.
static_assert(std::atomic<uint64_t>::is_always_lock_free,
              "shm rings require address-free 64-bit atomics");
static_assert(sizeof(ShmRingHdr) == 192, "tail/head must be cache-isolated");

/// One decoded record, valid until the next TryRead/Release on the ring.
/// `payload` points straight into the shared region: copy out before
/// releasing.
struct ShmRecordView {
  ShmRecordType type = ShmRecordType::kPad;
  const std::byte* payload = nullptr;
  uint32_t payload_bytes = 0;
};

/// Non-owning view of one SPSC ring (header + data region) inside a shared
/// mapping. The view's bookkeeping (pending reserve/release cursors) is
/// per-process; only ShmRingHdr is shared state.
class ShmRing {
 public:
  ShmRing() = default;

  /// Formats a zeroed region of `sizeof(ShmRingHdr) + data_bytes` bytes.
  /// `data_bytes` must be a power of two >= 4096.
  void Init(std::byte* mem, uint32_t data_bytes);
  /// Binds to an already-initialized region, validating magic and version.
  [[nodiscard]] Status Attach(std::byte* mem);

  uint32_t data_bytes() const { return data_bytes_; }
  /// Largest payload a single record may carry. Half the ring (minus
  /// headers) so a record plus its wrap pad always fits an empty ring —
  /// the producer can always make progress once the consumer drains.
  uint32_t max_payload() const {
    return data_bytes_ / 2 - kShmRecordHdrBytes * 2;
  }

  uint64_t tail_cursor() const {
    return hdr_->tail.load(std::memory_order_acquire);
  }
  uint64_t head_cursor() const {
    return hdr_->head.load(std::memory_order_acquire);
  }
  bool Empty() const { return tail_cursor() == head_cursor(); }

  /// Producer: reserves space for a record of `payload_bytes` and returns
  /// the payload slot, or nullptr when the ring is too full (try again
  /// after the consumer releases). May publish a kPad record as a side
  /// effect when the reservation has to wrap. `payload_bytes` must be
  /// <= max_payload().
  std::byte* TryReserve(uint32_t payload_bytes);
  /// Publishes the record reserved by the last successful TryReserve.
  /// `payload_bytes` must match the reservation.
  void Commit(ShmRecordType type, uint32_t payload_bytes);
  /// Reserve+copy+commit of a record laid out as `hdr` then `body`.
  /// Returns false when the ring is too full.
  bool TryPush(ShmRecordType type, const void* hdr, size_t hdr_bytes,
               const void* body, size_t body_bytes);

  /// Consumer: yields the next unconsumed record, skipping pads. Returns
  /// false when the ring is drained, kUnavailable when the shared header
  /// or a record fails validation (corrupt ring). The record stays
  /// readable until Release().
  [[nodiscard]] StatusOr<bool> TryRead(ShmRecordView* out);
  /// Consumer: returns the space of the last TryRead record (and any pads
  /// skipped reaching it) to the producer.
  void Release();

 private:
  ShmRingHdr* hdr_ = nullptr;
  std::byte* data_ = nullptr;
  uint32_t data_bytes_ = 0;
  uint64_t mask_ = 0;
  // Producer-side pending reservation (base cursor + full record bytes).
  uint64_t pending_base_ = 0;
  uint32_t pending_rec_ = 0;
  // Consumer-side cursor to publish on Release().
  uint64_t pending_release_ = 0;
};

/// Sentinel for "the directory has no such ring".
inline constexpr size_t kNoShmRing = static_cast<size_t>(-1);

/// Directory entry: the ring carrying records from endpoint `from` to
/// endpoint `to`. Endpoints are worker ids 0..W-1 plus the coordinator at
/// id W.
struct ShmRingSpec {
  uint32_t from = 0;
  uint32_t to = 0;
};

/// A fleet-lifetime shared region plus per-endpoint doorbells, created once
/// (pre-fork) by the owner of a persistent worker fleet and inherited by
/// every member. Per query, both sides lay a ShmDataPlane *view* over the
/// arena (ShmDataPlane::CreateInArena): the coordinator formats the rings,
/// the workers attach to them. The arena outlives every view, so a warm
/// fleet maps and prefaults its shared memory exactly once instead of once
/// per query — the fork/copy-out cost the serving layer exists to remove.
class ShmArena {
 public:
  ShmArena() = default;
  ~ShmArena();
  ShmArena(const ShmArena&) = delete;
  ShmArena& operator=(const ShmArena&) = delete;

  /// Maps `bytes` of MAP_SHARED|MAP_ANONYMOUS memory and opens one eventfd
  /// doorbell per endpoint. Size the region for the worst-case directory
  /// the fleet may ever run: every ordered endpoint pair needs at most
  /// `sizeof(ShmRingHdr) + ring_bytes`.
  [[nodiscard]] static StatusOr<std::unique_ptr<ShmArena>> Create(
      uint32_t num_endpoints, size_t bytes);

  uint32_t num_endpoints() const { return num_endpoints_; }
  size_t bytes() const { return region_bytes_; }
  std::byte* base() const { return region_; }
  int doorbell(uint32_t endpoint) const { return doorbells_[endpoint]; }
  const std::vector<int>& doorbells() const { return doorbells_; }

 private:
  std::byte* region_ = nullptr;
  size_t region_bytes_ = 0;
  uint32_t num_endpoints_ = 0;
  std::vector<int> doorbells_;
};

/// The full data plane for one fleet attempt: one shared mapping holding
/// every ring, plus one eventfd doorbell per endpoint. Created by the
/// coordinator pre-fork; children inherit the mapping and the doorbell
/// descriptors. Destroyed (munmap + close) per attempt, so a respawned
/// fleet always starts from freshly zeroed rings.
class ShmDataPlane {
 public:
  ShmDataPlane() = default;
  ~ShmDataPlane();
  ShmDataPlane(const ShmDataPlane&) = delete;
  ShmDataPlane& operator=(const ShmDataPlane&) = delete;

  /// `specs` must be duplicate-free with endpoints < num_endpoints;
  /// `ring_bytes` must be a power of two >= 4096.
  [[nodiscard]] static StatusOr<std::unique_ptr<ShmDataPlane>> Create(
      std::vector<ShmRingSpec> specs, uint32_t num_endpoints,
      uint32_t ring_bytes);

  /// A per-query view over a fleet-lifetime arena: rings are laid out
  /// sequentially from the arena base in `specs` order (both sides derive
  /// identical specs from the plan, so the layout needs no negotiation).
  /// The formatting side (`format` = true, the coordinator) re-initializes
  /// every ring header — it must do so only while every fleet member is
  /// parked idle; the attaching side validates the headers it finds. The
  /// view borrows the arena's mapping and doorbells, so destroying it
  /// releases nothing.
  [[nodiscard]] static StatusOr<std::unique_ptr<ShmDataPlane>> CreateInArena(
      ShmArena* arena, std::vector<ShmRingSpec> specs, uint32_t num_endpoints,
      uint32_t ring_bytes, bool format);

  /// Order- and size-sensitive hash of the directory; coordinator and
  /// workers cross-check it in the kHello handshake so a plan mismatch can
  /// never silently read the wrong ring.
  static uint64_t HashDirectory(const std::vector<ShmRingSpec>& specs,
                                uint32_t num_endpoints, uint32_t ring_bytes);

  size_t num_rings() const { return specs_.size(); }
  uint32_t num_endpoints() const { return num_endpoints_; }
  uint32_t ring_bytes() const { return ring_bytes_; }
  uint64_t directory_hash() const { return directory_hash_; }
  const ShmRingSpec& spec(size_t i) const { return specs_[i]; }
  ShmRing* ring(size_t i) { return &rings_[i]; }

  /// The ring from -> to, or nullptr when the directory has none.
  ShmRing* RingTo(uint32_t from, uint32_t to);
  /// Directory index of the ring from -> to, or kNoShmRing.
  size_t RingIndexTo(uint32_t from, uint32_t to) const;
  /// Indices of every ring whose consumer is `endpoint`, in directory
  /// order (relay rings first, then pair rings in plan order).
  const std::vector<size_t>& InboundRings(uint32_t endpoint) const {
    return inbound_[endpoint];
  }

  /// Wakes `endpoint`'s poll loop. Best-effort: eventfd semantics make a
  /// failed write (counter saturated) equivalent to an already-pending
  /// wakeup.
  void RingDoorbell(uint32_t endpoint);
  /// Clears pending wakeups; the caller then drains its inbound rings.
  void DrainDoorbell(uint32_t endpoint);
  int doorbell(uint32_t endpoint) const { return doorbells_[endpoint]; }

 private:
  /// Validates and indexes `specs` into index_/inbound_/specs_.
  [[nodiscard]] Status IndexSpecs(std::vector<ShmRingSpec> specs);

  std::vector<ShmRingSpec> specs_;
  std::vector<ShmRing> rings_;
  std::vector<std::vector<size_t>> inbound_;
  std::unordered_map<uint64_t, size_t> index_;  // (from<<32|to) -> ring
  std::vector<int> doorbells_;
  std::byte* region_ = nullptr;
  size_t region_bytes_ = 0;
  uint32_t num_endpoints_ = 0;
  uint32_t ring_bytes_ = 0;
  uint64_t directory_hash_ = 0;
  /// False for CreateInArena views: the mapping and doorbells belong to
  /// the arena, so the destructor must not munmap or close them.
  bool owns_resources_ = true;
};

}  // namespace mjoin

#endif  // MJOIN_NET_SHM_RING_H_
