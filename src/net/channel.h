#ifndef MJOIN_NET_CHANNEL_H_
#define MJOIN_NET_CHANNEL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "net/frame_conformance.h"
#include "net/wire.h"

namespace mjoin {

class NetFaultInjector;

/// One decoded frame off a FrameChannel.
struct Frame {
  FrameType type = FrameType::kError;
  std::vector<std::byte> payload;
};

/// Counters a FrameChannel keeps about its life so far. Sent counters are
/// bumped when bytes actually leave via write(), not when queued.
struct ChannelStats {
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t frames_sent = 0;
  uint64_t frames_received = 0;
};

/// Sets O_NONBLOCK on a descriptor.
[[nodiscard]] Status SetNonBlocking(int fd);

/// Blocks until `fd` is readable or `timeout_ms` elapses (negative waits
/// forever). Returns true when readable; false on timeout.
[[nodiscard]] StatusOr<bool> WaitReadable(int fd, int timeout_ms);

/// Frame transport over one nonblocking stream socket (the process
/// backend's coordinator<->worker socketpair). Writes are queued and
/// drained by Flush() as the socket accepts them; reads are reassembled
/// from arbitrary read() boundaries into whole frames.
///
/// Not thread-safe: each channel belongs to exactly one event loop (the
/// coordinator's poll loop or a worker's single thread).
///
/// Peer death (EPIPE / ECONNRESET / read()==0) and wire damage (frame
/// length out of bounds, frame checksum mismatch) are both reported as
/// StatusCode::kUnavailable: either way the link is lost for environmental
/// reasons and a retry on a fresh fleet may succeed. Deterministic protocol
/// errors keep their own codes (kInvalidArgument / kOutOfRange).
class FrameChannel {
 public:
  /// Takes ownership of `fd` (closed by the destructor). `peer` names the
  /// other end in error messages, e.g. "worker 3".
  FrameChannel(int fd, std::string peer);
  ~FrameChannel();

  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;

  int fd() const { return fd_; }
  const std::string& peer() const { return peer_; }

  /// Installs a caller-owned link-fault injector (tests and chaos runs
  /// only; nullptr uninstalls). Resets the injector's per-link latches —
  /// installing on a fresh channel models a fresh link.
  void set_fault_injector(NetFaultInjector* injector);

  /// Arms the runtime frame-protocol conformance checker for this channel
  /// when MJOIN_CONFORMANCE is set (no-op otherwise). Every endpoint calls
  /// this right after constructing its channel, naming its own role; a
  /// frame that then violates the frame table's direction or phase rules
  /// poisons the channel with kInternal, surfaced by the next Flush() or
  /// ReadAvailable() like corrupt wire.
  void EnableConformance(LinkRole role);

  /// Encodes `[len][type][payload][crc]` into the outbox. Cheap; no
  /// syscall.
  void QueueFrame(FrameType type, const std::vector<std::byte>& payload);

  /// Writes queued bytes until the socket would block or the outbox is
  /// empty. kUnavailable when the peer is gone.
  [[nodiscard]] Status Flush();

  bool has_pending_output() const;
  /// Bytes queued but not yet accepted by the kernel.
  size_t pending_output_bytes() const { return pending_output_bytes_; }

  /// Reads whatever the socket has, reassembling complete frames for
  /// NextFrame(). Sets `*peer_closed` when the peer shut down (after any
  /// final complete frames were recovered); oversized or malformed frame
  /// lengths poison the channel with a non-OK status.
  [[nodiscard]] Status ReadAvailable(bool* peer_closed);

  /// Pops the next complete frame; false when none is buffered.
  bool NextFrame(Frame* out);
  bool has_frames() const { return !frames_.empty(); }

  const ChannelStats& stats() const { return stats_; }

  /// Closes the descriptor early (destructor is a no-op afterwards).
  void Close();

 private:
  int fd_;
  std::string peer_;
  NetFaultInjector* fault_ = nullptr;
  /// Armed by EnableConformance; null (and cost-free) in production runs.
  std::unique_ptr<FrameConformance> conformance_;
  /// First conformance violation observed; poisons Flush/ReadAvailable.
  Status conformance_violation_ = Status::OK();
  /// A truncating fault fired: discard further outbound frames and shut
  /// down the write side once the (shortened) outbox drains.
  bool truncated_ = false;
  bool write_shutdown_done_ = false;
  /// Encoded-but-unsent frames; front() is partially written up to
  /// write_offset_.
  std::deque<std::vector<std::byte>> outbox_;
  size_t write_offset_ = 0;
  size_t pending_output_bytes_ = 0;
  /// Raw inbound bytes not yet parsed into a frame; consumed_ marks the
  /// parsed prefix, compacted once it grows.
  std::vector<std::byte> inbuf_;
  size_t consumed_ = 0;
  std::deque<Frame> frames_;
  ChannelStats stats_;
};

}  // namespace mjoin

#endif  // MJOIN_NET_CHANNEL_H_
