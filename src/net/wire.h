#ifndef MJOIN_NET_WIRE_H_
#define MJOIN_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "exec/batch.h"
#include "net/frame_table.h"
#include "storage/schema.h"

namespace mjoin {

struct ParallelPlan;

/// The process backend's frame protocol. Every message on a coordinator <->
/// worker socket is one frame:
///
///   u32  length   (bytes that follow: 1 type byte + payload + 4 crc bytes)
///   u8   type     (FrameType)
///   ...  payload  (type-specific, little-endian)
///   u32  crc32    over the type byte and the payload
///
/// Frames are self-delimiting, so a FrameChannel can reassemble them from
/// arbitrary read() boundaries. `length` is bounded by kMaxFrameBytes; an
/// out-of-bounds length or a checksum mismatch is corrupt wire — the
/// channel poisons itself with kUnavailable (an environmental failure: the
/// stream is unrecoverable, but retrying on a fresh fleet may succeed).
/// The trailer makes any single corrupted byte detectable, so a damaged
/// link can never silently mis-route or mis-decode a frame.
///
/// The enum is generated from MJOIN_FRAME_TABLE (net/frame_table.h), the
/// protocol's single definition site: per-frame documentation, directions,
/// and phase rules all live in the table rows.
enum class FrameType : uint8_t {
#define MJOIN_FRAME_ENUM_ROW(id, name, wire, klass, dirs, phases, next) \
  k##name = id,
  MJOIN_FRAME_TABLE(MJOIN_FRAME_ENUM_ROW)
#undef MJOIN_FRAME_ENUM_ROW
};

const char* FrameTypeName(FrameType type);

/// True when `raw` is a FrameType the table defines. The channel rejects
/// frames whose type byte is not in the table as corrupt wire, so a
/// handler switch can never be reached with an out-of-enum value.
bool ValidFrameType(uint8_t raw);

/// Table lookups for the conformance checker: the directions a frame may
/// legally travel (FrameDir mask), the link phases it may be observed in
/// (FramePhase mask), and the phase it advances the link to (kPhKeep when
/// it leaves the phase alone).
uint32_t FrameDirs(FrameType type);
uint32_t FramePhases(FrameType type);
uint32_t FrameNextPhase(FrameType type);

/// Hard upper bound on one frame's length field. Generous (base-relation
/// fragments ship as single frames) but small enough that a corrupted
/// length cannot drive a multi-gigabyte allocation.
inline constexpr uint32_t kMaxFrameBytes = 256u << 20;

/// Protocol version spoken by this build; bumped on any wire change.
/// v2: kPing/kPong heartbeat frames, PlanEnvelope attempt counter.
/// v3: shm data plane — PlanEnvelope ships the ring configuration, kHello
///     echoes the ring-directory hash, kNetStats carries shm counters.
/// v4: warm fleets and the serving layer — PlanEnvelope `persistent` flag,
///     kIdle end-of-query ack, kSubmit/kQueryResult serve frames.
/// v5: skew defense — PlanEnvelope ships SkewDefenseOptions, kOpStats
///     carries the skew counters, kSkewReport/kSkewDirective frames.
inline constexpr uint32_t kNetProtocolVersion = 5;

/// CRC-32 (IEEE 802.3 polynomial, the zlib crc32) over `size` bytes.
uint32_t Crc32(const std::byte* data, size_t size);

/// Little-endian primitive append/read helpers. Writers append to a byte
/// vector; WireReader consumes a byte span with bounds checking, so a
/// truncated or malformed payload surfaces as a Status instead of UB.
void PutU8(std::vector<std::byte>* out, uint8_t v);
void PutU16(std::vector<std::byte>* out, uint16_t v);
void PutU32(std::vector<std::byte>* out, uint32_t v);
void PutU64(std::vector<std::byte>* out, uint64_t v);
void PutI32(std::vector<std::byte>* out, int32_t v);
void PutI64(std::vector<std::byte>* out, int64_t v);
void PutF64(std::vector<std::byte>* out, double v);
void PutString(std::vector<std::byte>* out, const std::string& s);

class WireReader {
 public:
  WireReader(const std::byte* data, size_t size) : data_(data), end_(size) {}
  explicit WireReader(const std::vector<std::byte>& buf)
      : WireReader(buf.data(), buf.size()) {}

  size_t remaining() const { return end_ - pos_; }
  bool exhausted() const { return pos_ == end_; }
  const std::byte* cursor() const { return data_ + pos_; }

  [[nodiscard]] Status ReadU8(uint8_t* v);
  [[nodiscard]] Status ReadU16(uint16_t* v);
  [[nodiscard]] Status ReadU32(uint32_t* v);
  [[nodiscard]] Status ReadU64(uint64_t* v);
  [[nodiscard]] Status ReadI32(int32_t* v);
  [[nodiscard]] Status ReadI64(int64_t* v);
  [[nodiscard]] Status ReadF64(double* v);
  [[nodiscard]] Status ReadString(std::string* s);
  /// Advances past `size` raw bytes, exposing them via `*data`.
  [[nodiscard]] Status ReadBytes(size_t size, const std::byte** data);

 private:
  const std::byte* data_;
  size_t pos_ = 0;
  size_t end_;
};

/// Deterministic structural interning of every schema a plan can put on
/// the wire. Coordinator and workers build their registry from the same
/// plan (the worker from the handshake's parsed text), visiting ops in
/// plan order, so a schema id means the same row layout on both ends — the
/// wire format's schema check rests on this.
class SchemaRegistry {
 public:
  explicit SchemaRegistry(const ParallelPlan& plan);

  size_t size() const { return schemas_.size(); }
  const std::shared_ptr<const Schema>& Get(uint32_t id) const {
    return schemas_[id];
  }
  /// Id of a structurally equal schema; NotFound when the plan never
  /// declared this layout.
  [[nodiscard]] StatusOr<uint32_t> IdOf(const Schema& schema) const;

 private:
  void Intern(const std::shared_ptr<const Schema>& schema);

  std::vector<std::shared_ptr<const Schema>> schemas_;
};

/// TupleBatch wire format (the body of kData/kFragment/kResultRows frames
/// after their routing fields):
///
///   u32  magic      'MJTB' (0x4254'4A4D little-endian on the wire)
///   u16  version    kBatchWireVersion
///   u16  flags      0 (reserved)
///   u32  schema_id  index into the run's SchemaRegistry
///   u32  tuple_size redundant with schema_id; cross-checked on decode
///   u32  num_tuples
///   ...  rows       num_tuples * tuple_size bytes, the batch's raw bytes
///   u32  crc32      over everything from magic through the last row byte
///
/// Decoding validates magic, version, schema id, the tuple-size agreement,
/// the byte count, and the CRC; any mismatch is an error, never a partial
/// batch.
inline constexpr uint32_t kBatchWireMagic = 0x4254'4A4Du;  // "MJTB"
inline constexpr uint16_t kBatchWireVersion = 1;

/// Appends the wire encoding of `count` rows of `tuple_size` bytes each.
void AppendRowsWire(uint32_t schema_id, uint32_t tuple_size,
                    const std::byte* rows, size_t count,
                    std::vector<std::byte>* out);

/// Appends the wire encoding of a whole batch.
void AppendBatchWire(const TupleBatch& batch, uint32_t schema_id,
                     std::vector<std::byte>* out);

/// Bytes AppendRowsWire will produce for `count` rows of `tuple_size`.
size_t BatchWireSize(uint32_t tuple_size, size_t count);

/// Decodes one batch from `reader` into `out`, which must be bound to the
/// decoded schema id's layout already or is rebound via `registry`. The
/// batch's previous contents are discarded; its buffer capacity survives.
[[nodiscard]] Status ReadBatchWire(WireReader* reader,
                                   const SchemaRegistry& registry,
                     TupleBatch* out);

}  // namespace mjoin

#endif  // MJOIN_NET_WIRE_H_
