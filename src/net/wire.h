#ifndef MJOIN_NET_WIRE_H_
#define MJOIN_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "exec/batch.h"
#include "storage/schema.h"

namespace mjoin {

struct ParallelPlan;

/// The process backend's frame protocol. Every message on a coordinator <->
/// worker socket is one frame:
///
///   u32  length   (bytes that follow: 1 type byte + payload + 4 crc bytes)
///   u8   type     (FrameType)
///   ...  payload  (type-specific, little-endian)
///   u32  crc32    over the type byte and the payload
///
/// Frames are self-delimiting, so a FrameChannel can reassemble them from
/// arbitrary read() boundaries. `length` is bounded by kMaxFrameBytes; an
/// out-of-bounds length or a checksum mismatch is corrupt wire — the
/// channel poisons itself with kUnavailable (an environmental failure: the
/// stream is unrecoverable, but retrying on a fresh fleet may succeed).
/// The trailer makes any single corrupted byte detectable, so a damaged
/// link can never silently mis-route or mis-decode a frame.
enum class FrameType : uint8_t {
  /// worker -> coordinator: protocol version + echo hash of the plan text
  /// the worker parsed (the coordinator verifies the handshake round trip).
  kHello = 1,
  /// coordinator -> worker: run options + the plan in textual XRA.
  kPlan = 2,
  /// coordinator -> worker: one chunk of a scan instance's base-relation
  /// fragment (op, instance, wire batch). All fragments precede triggers.
  kFragment = 3,
  /// coordinator -> worker: start every hosted instance of a trigger group.
  kTrigger = 4,
  /// data batch toward a consumer instance; routed by the coordinator
  /// (worker -> coordinator -> worker) and subject to credit flow control.
  kData = 5,
  /// end-of-stream from one producer instance to one consumer instance;
  /// routed like kData (and ordered behind it), but consumes no credit.
  kEos = 6,
  /// worker -> coordinator: instance milestone for the scheduler.
  kMilestone = 7,
  /// worker -> coordinator: the worker finished processing `count` data
  /// frames; the coordinator releases that much of its credit window.
  kCredit = 8,
  /// coordinator -> worker: the plan completed; report results and stats.
  kFinish = 9,
  /// worker -> coordinator: partial ResultSummary of a stored result.
  kSummary = 10,
  /// worker -> coordinator: final-result rows (only when materializing).
  kResultRows = 11,
  /// worker -> coordinator: merged OpMetrics of one hosted op.
  kOpStats = 12,
  /// worker -> coordinator: the worker's run counters (serialize seconds,
  /// local deliveries, faults injected, peak memory, ...).
  kNetStats = 13,
  /// worker -> coordinator: recorded trace intervals.
  kTraceEvents = 14,
  /// worker -> coordinator: fatal worker-side status; the run aborts.
  kError = 15,
  /// worker -> coordinator: finish-phase reporting done, awaiting shutdown.
  kBye = 16,
  /// coordinator -> worker: exit cleanly.
  kShutdown = 17,
  /// coordinator -> worker: liveness probe (HeartbeatMsg). A worker answers
  /// every ping with a kPong immediately; the coordinator's watchdog treats
  /// prolonged silence as a hung worker.
  kPing = 18,
  /// worker -> coordinator: echo of a kPing's sequence number.
  kPong = 19,
  /// client -> server (mjoin_serve): submit one query (SubmitMsg — tenant,
  /// backend, plan text, per-query limits). A connection may pipeline
  /// submits; results come back in completion order, matched by
  /// client_seq — submission order is not guaranteed.
  kSubmit = 20,
  /// server -> client: outcome of one kSubmit (QueryResultMsg — status,
  /// result summary, wall/queue seconds, cache/backend provenance).
  kQueryResult = 21,
  /// worker -> coordinator (persistent fleets only): the worker tore down
  /// the previous query's state and is parked waiting for the next kPlan.
  /// The coordinator must not reformat the shared arena or ship a new plan
  /// until every fleet member has acked idle.
  kIdle = 22,
  /// worker -> coordinator: one defended join instance's build-side skew
  /// summary (SkewReportMsg — heavy-hitter candidates with their build
  /// rows inline, plus the instance's build-key Bloom filter). Sent after
  /// the instance's build input finished; its kBuildDone milestone follows
  /// in the same flush, so the coordinator always holds the report before
  /// it can schedule the probe.
  kSkewReport = 23,
  /// coordinator -> worker: the merged plan of action for one defended
  /// join (SkewDirectiveMsg — hot keys, replicated build rows, OR'd Bloom
  /// filter). Broadcast to every worker once all of the join's instances
  /// have reported; each worker applies it to hosted join instances and
  /// installs the emit-side defense on hosted probe producers, then
  /// releases the deferred build-done processing.
  kSkewDirective = 24,
};

const char* FrameTypeName(FrameType type);

/// Hard upper bound on one frame's length field. Generous (base-relation
/// fragments ship as single frames) but small enough that a corrupted
/// length cannot drive a multi-gigabyte allocation.
inline constexpr uint32_t kMaxFrameBytes = 256u << 20;

/// Protocol version spoken by this build; bumped on any wire change.
/// v2: kPing/kPong heartbeat frames, PlanEnvelope attempt counter.
/// v3: shm data plane — PlanEnvelope ships the ring configuration, kHello
///     echoes the ring-directory hash, kNetStats carries shm counters.
/// v4: warm fleets and the serving layer — PlanEnvelope `persistent` flag,
///     kIdle end-of-query ack, kSubmit/kQueryResult serve frames.
/// v5: skew defense — PlanEnvelope ships SkewDefenseOptions, kOpStats
///     carries the skew counters, kSkewReport/kSkewDirective frames.
inline constexpr uint32_t kNetProtocolVersion = 5;

/// CRC-32 (IEEE 802.3 polynomial, the zlib crc32) over `size` bytes.
uint32_t Crc32(const std::byte* data, size_t size);

/// Little-endian primitive append/read helpers. Writers append to a byte
/// vector; WireReader consumes a byte span with bounds checking, so a
/// truncated or malformed payload surfaces as a Status instead of UB.
void PutU8(std::vector<std::byte>* out, uint8_t v);
void PutU16(std::vector<std::byte>* out, uint16_t v);
void PutU32(std::vector<std::byte>* out, uint32_t v);
void PutU64(std::vector<std::byte>* out, uint64_t v);
void PutI32(std::vector<std::byte>* out, int32_t v);
void PutI64(std::vector<std::byte>* out, int64_t v);
void PutF64(std::vector<std::byte>* out, double v);
void PutString(std::vector<std::byte>* out, const std::string& s);

class WireReader {
 public:
  WireReader(const std::byte* data, size_t size) : data_(data), end_(size) {}
  explicit WireReader(const std::vector<std::byte>& buf)
      : WireReader(buf.data(), buf.size()) {}

  size_t remaining() const { return end_ - pos_; }
  bool exhausted() const { return pos_ == end_; }
  const std::byte* cursor() const { return data_ + pos_; }

  [[nodiscard]] Status ReadU8(uint8_t* v);
  [[nodiscard]] Status ReadU16(uint16_t* v);
  [[nodiscard]] Status ReadU32(uint32_t* v);
  [[nodiscard]] Status ReadU64(uint64_t* v);
  [[nodiscard]] Status ReadI32(int32_t* v);
  [[nodiscard]] Status ReadI64(int64_t* v);
  [[nodiscard]] Status ReadF64(double* v);
  [[nodiscard]] Status ReadString(std::string* s);
  /// Advances past `size` raw bytes, exposing them via `*data`.
  [[nodiscard]] Status ReadBytes(size_t size, const std::byte** data);

 private:
  const std::byte* data_;
  size_t pos_ = 0;
  size_t end_;
};

/// Deterministic structural interning of every schema a plan can put on
/// the wire. Coordinator and workers build their registry from the same
/// plan (the worker from the handshake's parsed text), visiting ops in
/// plan order, so a schema id means the same row layout on both ends — the
/// wire format's schema check rests on this.
class SchemaRegistry {
 public:
  explicit SchemaRegistry(const ParallelPlan& plan);

  size_t size() const { return schemas_.size(); }
  const std::shared_ptr<const Schema>& Get(uint32_t id) const {
    return schemas_[id];
  }
  /// Id of a structurally equal schema; NotFound when the plan never
  /// declared this layout.
  [[nodiscard]] StatusOr<uint32_t> IdOf(const Schema& schema) const;

 private:
  void Intern(const std::shared_ptr<const Schema>& schema);

  std::vector<std::shared_ptr<const Schema>> schemas_;
};

/// TupleBatch wire format (the body of kData/kFragment/kResultRows frames
/// after their routing fields):
///
///   u32  magic      'MJTB' (0x4254'4A4D little-endian on the wire)
///   u16  version    kBatchWireVersion
///   u16  flags      0 (reserved)
///   u32  schema_id  index into the run's SchemaRegistry
///   u32  tuple_size redundant with schema_id; cross-checked on decode
///   u32  num_tuples
///   ...  rows       num_tuples * tuple_size bytes, the batch's raw bytes
///   u32  crc32      over everything from magic through the last row byte
///
/// Decoding validates magic, version, schema id, the tuple-size agreement,
/// the byte count, and the CRC; any mismatch is an error, never a partial
/// batch.
inline constexpr uint32_t kBatchWireMagic = 0x4254'4A4Du;  // "MJTB"
inline constexpr uint16_t kBatchWireVersion = 1;

/// Appends the wire encoding of `count` rows of `tuple_size` bytes each.
void AppendRowsWire(uint32_t schema_id, uint32_t tuple_size,
                    const std::byte* rows, size_t count,
                    std::vector<std::byte>* out);

/// Appends the wire encoding of a whole batch.
void AppendBatchWire(const TupleBatch& batch, uint32_t schema_id,
                     std::vector<std::byte>* out);

/// Bytes AppendRowsWire will produce for `count` rows of `tuple_size`.
size_t BatchWireSize(uint32_t tuple_size, size_t count);

/// Decodes one batch from `reader` into `out`, which must be bound to the
/// decoded schema id's layout already or is rebound via `registry`. The
/// batch's previous contents are discarded; its buffer capacity survives.
[[nodiscard]] Status ReadBatchWire(WireReader* reader,
                                   const SchemaRegistry& registry,
                     TupleBatch* out);

}  // namespace mjoin

#endif  // MJOIN_NET_WIRE_H_
