#include "net/frame_conformance.h"

#include <atomic>
#include <cstdlib>

#include "common/logging.h"
#include "common/string_util.h"

namespace mjoin {

namespace {

std::atomic<uint64_t> g_violations{0};

/// The direction a frame travels when `role` sends (outbound) or receives
/// it. Fixed by the role, so a frame observed moving the wrong way is a
/// protocol violation no matter what phase the link is in.
FrameDir TravelDirection(LinkRole role, bool outbound) {
  switch (role) {
    case LinkRole::kCoordinator:
      return outbound ? kDirToWorker : kDirToCoordinator;
    case LinkRole::kWorker:
      return outbound ? kDirToCoordinator : kDirToWorker;
    case LinkRole::kServer:
      return outbound ? kDirToClient : kDirToServer;
    case LinkRole::kClient:
      return outbound ? kDirToServer : kDirToClient;
  }
  return kDirToCoordinator;
}

const char* FrameDirName(FrameDir dir) {
  switch (dir) {
    case kDirToWorker:
      return "coordinator->worker";
    case kDirToCoordinator:
      return "worker->coordinator";
    case kDirToServer:
      return "client->server";
    case kDirToClient:
      return "server->client";
  }
  return "?";
}

bool IsServeRole(LinkRole role) {
  return role == LinkRole::kServer || role == LinkRole::kClient;
}

}  // namespace

const char* LinkRoleName(LinkRole role) {
  switch (role) {
    case LinkRole::kCoordinator:
      return "coordinator";
    case LinkRole::kWorker:
      return "worker";
    case LinkRole::kServer:
      return "server";
    case LinkRole::kClient:
      return "client";
  }
  return "?";
}

const char* FramePhaseName(uint32_t phase_bit) {
  switch (phase_bit) {
    case kPhAwaitPlan:
      return "await-plan";
    case kPhHandshake:
      return "handshake";
    case kPhExecute:
      return "execute";
    case kPhReport:
      return "report";
    case kPhDone:
      return "done";
    case kPhServe:
      return "serve";
  }
  return "?";
}

bool FrameConformanceEnabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("MJOIN_CONFORMANCE");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
  }();
  return enabled;
}

uint64_t FrameConformanceViolations() {
  return g_violations.load(std::memory_order_relaxed);
}

FrameConformance::FrameConformance(LinkRole role, std::string peer)
    : role_(role),
      peer_(std::move(peer)),
      phase_(IsServeRole(role) ? kPhServe : kPhAwaitPlan) {}

Status FrameConformance::Observe(FrameType type, bool outbound) {
  const FrameDir dir = TravelDirection(role_, outbound);
  if ((FrameDirs(type) & dir) == 0) {
    g_violations.fetch_add(1, std::memory_order_relaxed);
    Status violation = Status::Internal(StrCat(
        "frame-protocol violation at ", LinkRoleName(role_), " (peer ",
        peer_, "): ", FrameTypeName(type), " frame may never travel ",
        FrameDirName(dir)));
    // Loud on purpose: a worker that dies of a poisoned channel only
    // surfaces an exit status, so the message must reach stderr here.
    MJOIN_LOG(Error) << violation.message();
    return violation;
  }
  if ((FramePhases(type) & phase_) == 0) {
    g_violations.fetch_add(1, std::memory_order_relaxed);
    Status violation = Status::Internal(StrCat(
        "frame-protocol violation at ", LinkRoleName(role_), " (peer ",
        peer_, "): ", outbound ? "sent" : "received", " ",
        FrameTypeName(type), " frame in link phase ",
        FramePhaseName(phase_)));
    MJOIN_LOG(Error) << violation.message();
    return violation;
  }
  // Serve links have a single phase; only worker links transition.
  if (!IsServeRole(role_)) {
    const uint32_t next = FrameNextPhase(type);
    if (next != kPhKeep) phase_ = next;
  }
  return Status::OK();
}

}  // namespace mjoin
