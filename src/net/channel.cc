#include "net/channel.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "common/string_util.h"
#include "net/net_fault.h"

namespace mjoin {

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(
        StrCat("fcntl(O_NONBLOCK) failed: ", std::strerror(errno)));
  }
  return Status::OK();
}

StatusOr<bool> WaitReadable(int fd, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  pfd.revents = 0;
  int rc;
  do {
    rc = poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    return Status::Internal(StrCat("poll failed: ", std::strerror(errno)));
  }
  return rc > 0;
}

FrameChannel::FrameChannel(int fd, std::string peer)
    : fd_(fd), peer_(std::move(peer)) {}

FrameChannel::~FrameChannel() { Close(); }

void FrameChannel::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

void FrameChannel::set_fault_injector(NetFaultInjector* injector) {
  fault_ = injector;
  if (fault_ != nullptr) fault_->OnChannelRebind();
}

bool FrameChannel::has_pending_output() const {
  // A stalled link pretends to be drained: the bytes sit in the outbox but
  // asking poll() for POLLOUT would spin (the socket *is* writable — the
  // injector just refuses to write).
  if (fault_ != nullptr && fault_->send_stalled()) return false;
  return !outbox_.empty();
}

void FrameChannel::EnableConformance(LinkRole role) {
  if (!FrameConformanceEnabled()) return;
  conformance_ = std::make_unique<FrameConformance>(role, peer_);
}

void FrameChannel::QueueFrame(FrameType type,
                              const std::vector<std::byte>& payload) {
  if (conformance_ != nullptr && conformance_violation_.ok()) {
    conformance_violation_ = conformance_->Observe(type, /*outbound=*/true);
  }
  if (truncated_) return;  // the link already died mid-frame
  std::vector<std::byte> frame;
  frame.reserve(4 + 1 + payload.size() + 4);
  PutU32(&frame, static_cast<uint32_t>(1 + payload.size() + 4));
  PutU8(&frame, static_cast<uint8_t>(type));
  frame.insert(frame.end(), payload.begin(), payload.end());
  PutU32(&frame, Crc32(frame.data() + 4, frame.size() - 4));
  if (fault_ != nullptr) {
    bool shutdown_write = false;
    fault_->OnOutboundFrame(&frame, &shutdown_write);
    if (shutdown_write) truncated_ = true;
  }
  pending_output_bytes_ += frame.size();
  outbox_.push_back(std::move(frame));
}

Status FrameChannel::Flush() {
  if (!conformance_violation_.ok()) return conformance_violation_;
  if (fault_ != nullptr && fault_->ShouldDropConnection() &&
      !write_shutdown_done_) {
    // An abrupt link drop: both directions die at once. The send below
    // observes EPIPE and reports the peer as gone.
    shutdown(fd_, SHUT_RDWR);
    write_shutdown_done_ = true;
  }
  while (!outbox_.empty()) {
    const std::vector<std::byte>& front = outbox_.front();
    size_t want = front.size() - write_offset_;
    if (fault_ != nullptr) {
      if (fault_->send_stalled()) return Status::OK();  // swallowed traffic
      want = fault_->CapWrite(want);
    }
    ssize_t n = send(fd_, front.data() + write_offset_, want, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Unavailable(
            StrCat(peer_, " closed its socket while we were sending"));
      }
      return Status::Internal(
          StrCat("send to ", peer_, " failed: ", std::strerror(errno)));
    }
    stats_.bytes_sent += static_cast<uint64_t>(n);
    pending_output_bytes_ -= static_cast<size_t>(n);
    write_offset_ += static_cast<size_t>(n);
    if (write_offset_ == front.size()) {
      ++stats_.frames_sent;
      outbox_.pop_front();
      write_offset_ = 0;
    }
  }
  if (truncated_ && !write_shutdown_done_) {
    // The injected mid-frame cut has fully left the kernel: complete the
    // connection death the peer is about to observe.
    shutdown(fd_, SHUT_WR);
    write_shutdown_done_ = true;
  }
  return Status::OK();
}

Status FrameChannel::ReadAvailable(bool* peer_closed) {
  *peer_closed = false;
  if (!conformance_violation_.ok()) return conformance_violation_;
  char buf[64 * 1024];
  for (;;) {
    ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) {
        *peer_closed = true;
        break;
      }
      return Status::Internal(
          StrCat("recv from ", peer_, " failed: ", std::strerror(errno)));
    }
    if (n == 0) {
      *peer_closed = true;
      break;
    }
    stats_.bytes_received += static_cast<uint64_t>(n);
    std::byte* bytes = reinterpret_cast<std::byte*>(buf);
    if (fault_ != nullptr) {
      fault_->OnInboundBytes(bytes, static_cast<size_t>(n));
    }
    inbuf_.insert(inbuf_.end(), bytes, bytes + n);
    // A short read means the kernel buffer is drained; don't spin on recv.
    if (static_cast<size_t>(n) < sizeof(buf)) break;
  }

  // Parse every complete frame out of the unconsumed prefix. `len` counts
  // the type byte, the payload, and the 4-byte CRC trailer.
  while (inbuf_.size() - consumed_ >= 4) {
    const std::byte* p = inbuf_.data() + consumed_;
    uint32_t len = 0;
    for (int i = 3; i >= 0; --i) {
      len = (len << 8) | static_cast<uint8_t>(p[i]);
    }
    if (len < 5 || len > kMaxFrameBytes) {
      return Status::Unavailable(
          StrCat("corrupt frame from ", peer_, ": frame length ", len));
    }
    if (inbuf_.size() - consumed_ < 4 + static_cast<size_t>(len)) break;
    const size_t body_len = static_cast<size_t>(len) - 4;
    uint32_t wire_crc = 0;
    for (int i = 3; i >= 0; --i) {
      wire_crc =
          (wire_crc << 8) | static_cast<uint8_t>(p[4 + body_len + i]);
    }
    if (Crc32(p + 4, body_len) != wire_crc) {
      return Status::Unavailable(StrCat("corrupt ",
                                        FrameTypeName(static_cast<FrameType>(
                                            static_cast<uint8_t>(p[4]))),
                                        " frame from ", peer_,
                                        ": checksum mismatch"));
    }
    // The type byte must be a frame the table defines; handler switches
    // rely on never seeing an out-of-enum value.
    if (!ValidFrameType(static_cast<uint8_t>(p[4]))) {
      return Status::Unavailable(
          StrCat("corrupt frame from ", peer_, ": unknown frame type ",
                 static_cast<unsigned>(static_cast<uint8_t>(p[4]))));
    }
    Frame frame;
    frame.type = static_cast<FrameType>(static_cast<uint8_t>(p[4]));
    frame.payload.assign(p + 5, p + 4 + body_len);
    frames_.push_back(std::move(frame));
    ++stats_.frames_received;
    consumed_ += 4 + static_cast<size_t>(len);
  }
  if (consumed_ == inbuf_.size()) {
    inbuf_.clear();
    consumed_ = 0;
  } else if (consumed_ > (64u << 10)) {
    inbuf_.erase(inbuf_.begin(), inbuf_.begin() + consumed_);
    consumed_ = 0;
  }
  return Status::OK();
}

bool FrameChannel::NextFrame(Frame* out) {
  if (frames_.empty()) return false;
  *out = std::move(frames_.front());
  frames_.pop_front();
  if (conformance_ != nullptr && conformance_violation_.ok()) {
    conformance_violation_ = conformance_->Observe(out->type,
                                                   /*outbound=*/false);
  }
  return true;
}

}  // namespace mjoin
