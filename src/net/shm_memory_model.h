#ifndef MJOIN_NET_SHM_MEMORY_MODEL_H_
#define MJOIN_NET_SHM_MEMORY_MODEL_H_

/// The memory-model seam of the shm ring.
///
/// shm_ring.cc performs every shared-visible access through the aliases
/// declared here, so the *same production source* can be compiled two
/// ways:
///
///   - Production (default): ShmAtomicU64 is std::atomic<uint64_t>, the
///     plain-word helpers compile to raw loads/stores/memcpy, and
///     MJOIN_SHM_MUTATION(id) is the constant false. Object code is
///     identical to writing the accesses directly.
///
///   - Model checking (-DMJOIN_SHM_MEMORY_MODEL, the mjoin_check binary
///     only): the aliases resolve to src/check/model_policy.h, whose
///     instrumented types yield to an interleaving scheduler at every
///     shared access, simulate store-buffer reordering for relaxed
///     stores, serve stale values to unsynchronized plain loads, and let
///     seeded mutations (MJOIN_SHM_MUTATION) weaken the code under test.
///
/// The seam exists so the checker exercises the production ring logic
/// itself — TryReserve's pad arithmetic, Commit's publish order,
/// TryRead's validation — rather than a hand-written model of it.

#ifdef MJOIN_SHM_MEMORY_MODEL

#include "check/model_policy.h"  // IWYU pragma: export

#else  // production

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace mjoin {

using ShmAtomicU64 = std::atomic<uint64_t>;

/// Plain (non-atomic) word access to the shared data region. The record
/// header and payload bytes are ordinary stores whose visibility is
/// entirely carried by the release store of the ring cursor.
inline void ShmStoreU32(uint32_t* p, uint32_t v) { *p = v; }
inline uint32_t ShmLoadU32(const uint32_t* p) { return *p; }
inline void ShmCopyIn(void* dst, const void* src, size_t n) {
  std::memcpy(dst, src, n);
}

}  // namespace mjoin

/// Seeded-bug hook: every mutation site compiles to a branch on false,
/// which the optimizer deletes. mjoin_check's mutation self-test enables
/// one id at a time to prove the checker catches the weakened code.
#define MJOIN_SHM_MUTATION(id) false

#endif  // MJOIN_SHM_MEMORY_MODEL

#endif  // MJOIN_NET_SHM_MEMORY_MODEL_H_
