#include "net/net_fault.h"

#include <algorithm>

#include "common/string_util.h"

namespace mjoin {

std::string NetFaultKindName(NetFaultKind kind) {
  switch (kind) {
    case NetFaultKind::kNone:
      return "none";
    case NetFaultKind::kCorruptOutbound:
      return "corrupt-out";
    case NetFaultKind::kCorruptInbound:
      return "corrupt-in";
    case NetFaultKind::kTruncateOutbound:
      return "truncate-out";
    case NetFaultKind::kShortWrites:
      return "short-writes";
    case NetFaultKind::kStallOutbound:
      return "stall-out";
    case NetFaultKind::kDropConnection:
      return "drop-conn";
  }
  return "unknown";
}

bool ParseNetFaultKind(const std::string& text, NetFaultKind* kind) {
  for (NetFaultKind candidate :
       {NetFaultKind::kNone, NetFaultKind::kCorruptOutbound,
        NetFaultKind::kCorruptInbound, NetFaultKind::kTruncateOutbound,
        NetFaultKind::kShortWrites, NetFaultKind::kStallOutbound,
        NetFaultKind::kDropConnection}) {
    if (NetFaultKindName(candidate) == text) {
      *kind = candidate;
      return true;
    }
  }
  return false;
}

std::string SerializeNetFaultScenario(const NetFaultScenario& scenario) {
  return StrCat("kind=", NetFaultKindName(scenario.kind),
                " worker=", scenario.worker,
                " after=", scenario.after_frames,
                " max-fires=", scenario.max_fires,
                " write-cap=", scenario.write_cap, " seed=", scenario.seed);
}

NetFaultInjector::NetFaultInjector(const NetFaultScenario& scenario)
    : scenario_(scenario), rng_(scenario.seed) {}

size_t NetFaultInjector::PickOffset(size_t size) {
  if (size <= 5) return size - 1;  // the type byte of a payloadless frame
  return 4 + std::uniform_int_distribution<size_t>(0, size - 5)(rng_);
}

void NetFaultInjector::OnChannelRebind() {
  stalled_ = false;
  drop_pending_ = false;
}

void NetFaultInjector::OnOutboundFrame(std::vector<std::byte>* frame,
                                       bool* shutdown_write) {
  if (frame->empty()) return;
  switch (scenario_.kind) {
    case NetFaultKind::kCorruptOutbound: {
      if (outbound_seen_++ < scenario_.after_frames || !Armed()) return;
      ++fires_;
      size_t offset = PickOffset(frame->size());
      (*frame)[offset] ^= std::byte{0x20};
      return;
    }
    case NetFaultKind::kTruncateOutbound: {
      if (outbound_seen_++ < scenario_.after_frames || !Armed()) return;
      ++fires_;
      // Keep at least the length header so the peer commits to waiting for
      // a frame that never completes, then learns the truth from EOF.
      frame->resize(std::max<size_t>(4, frame->size() / 2));
      *shutdown_write = true;
      return;
    }
    case NetFaultKind::kStallOutbound:
      if (stalled_) return;
      if (outbound_seen_++ < scenario_.after_frames || !Armed()) return;
      ++fires_;
      stalled_ = true;
      return;
    case NetFaultKind::kDropConnection:
      if (drop_pending_) return;
      if (outbound_seen_++ < scenario_.after_frames || !Armed()) return;
      ++fires_;
      drop_pending_ = true;
      return;
    case NetFaultKind::kNone:
    case NetFaultKind::kCorruptInbound:
    case NetFaultKind::kShortWrites:
      return;
  }
}

size_t NetFaultInjector::CapWrite(size_t want) {
  if (stalled_) return 0;
  if (scenario_.kind != NetFaultKind::kShortWrites) return want;
  // A mode, not an event: every send is capped; counted once.
  if (fires_ == 0) fires_ = 1;
  return std::min(want, std::max<size_t>(1, scenario_.write_cap));
}

bool NetFaultInjector::ShouldDropConnection() { return drop_pending_; }

void NetFaultInjector::OnInboundBytes(std::byte* data, size_t size) {
  if (scenario_.kind != NetFaultKind::kCorruptInbound || size == 0) return;
  if (inbound_seen_++ < scenario_.after_frames || !Armed()) return;
  ++fires_;
  size_t offset = std::uniform_int_distribution<size_t>(0, size - 1)(rng_);
  data[offset] ^= std::byte{0x20};
}

}  // namespace mjoin
