#ifndef MJOIN_NET_FRAME_CONFORMANCE_H_
#define MJOIN_NET_FRAME_CONFORMANCE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/wire.h"

namespace mjoin {

/// Which end of a connection a FrameChannel is, for frame-protocol
/// conformance: the role fixes the wire direction of every sent and
/// received frame.
enum class LinkRole : uint8_t {
  kCoordinator,  // process-backend coordinator end of a worker link
  kWorker,       // worker end of a worker link
  kServer,       // mjoin_serve server end of a client connection
  kClient,       // serve client end
};

const char* LinkRoleName(LinkRole role);

/// Name of a single FramePhase bit, for violation messages.
const char* FramePhaseName(uint32_t phase_bit);

/// True when MJOIN_CONFORMANCE=1 (read once): the debug-build runtime
/// conformance checker validates every frame a FrameChannel sends or
/// receives against the frame table's direction and phase rules. The
/// golden, serve, and chaos suites enable it; production runs pay one
/// null-pointer test per frame when it is off.
bool FrameConformanceEnabled();

/// Running count of conformance violations observed process-wide since
/// start; tests assert it stays zero across a suite.
uint64_t FrameConformanceViolations();

/// Validates one connection's observed frame sequence (both directions
/// interleaved in this endpoint's observation order) against the phase
/// machine declared in MJOIN_FRAME_TABLE. One instance per FrameChannel;
/// not thread-safe, like the channel that owns it.
///
/// The machine is deliberately one-sided-observer-safe: each endpoint sees
/// its own sends at queue time and its receives at pop time, so the two
/// ends of a link may disagree transiently about the current phase. Every
/// mask in the table therefore covers the union of both endpoints' legal
/// observation windows — what the checker rejects can never be a
/// legitimate ordering race, only a protocol violation.
class FrameConformance {
 public:
  FrameConformance(LinkRole role, std::string peer);

  /// Checks one frame this endpoint sent (`outbound`) or received, and
  /// advances the phase machine. kInternal names the frame, direction,
  /// phase, and peer on a violation; the caller poisons the channel with
  /// it, the same way corrupt wire poisons it.
  [[nodiscard]] Status Observe(FrameType type, bool outbound);

  uint32_t phase() const { return phase_; }

 private:
  LinkRole role_;
  std::string peer_;
  uint32_t phase_;
};

}  // namespace mjoin

#endif  // MJOIN_NET_FRAME_CONFORMANCE_H_
