#ifndef MJOIN_NET_NET_FAULT_H_
#define MJOIN_NET_NET_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace mjoin {

/// What a NetFaultInjector does to a FrameChannel's wire traffic. Where the
/// engine-level FaultInjector (engine/fault_injector.h) models a misbehaving
/// *node*, this injector models a misbehaving *link*: it sits inside one
/// channel and damages bytes, not operator semantics.
enum class NetFaultKind {
  kNone = 0,
  /// Flip one byte of an outbound frame after it is encoded. The receiver
  /// must detect the damage (frame length bound, batch CRC, payload decode)
  /// and surface it as a retryable corrupt-wire failure.
  kCorruptOutbound,
  /// Flip one byte of an inbound read chunk before frame reassembly — the
  /// same corruption seen from the receiving side.
  kCorruptInbound,
  /// Cut an outbound frame short and shut down the write side, as a
  /// connection dying mid-frame would. The peer sees a truncated stream.
  kTruncateOutbound,
  /// Cap every send() at a few bytes: pathological short writes. Purely a
  /// stressor for the partial-write paths; traffic stays intact.
  kShortWrites,
  /// Stop sending entirely while keeping the socket open: a silent one-way
  /// hang. Only a liveness watchdog can notice this one.
  kStallOutbound,
  /// shutdown(SHUT_RDWR) mid-stream: an abrupt connection drop.
  kDropConnection,
};

std::string NetFaultKindName(NetFaultKind kind);
bool ParseNetFaultKind(const std::string& text, NetFaultKind* kind);

/// Parameters of one injected link fault.
struct NetFaultScenario {
  NetFaultKind kind = NetFaultKind::kNone;
  /// Which worker's channel the coordinator installs the injector on.
  uint32_t worker = 0;
  /// Outbound frames (kCorruptOutbound/kTruncateOutbound/kDropConnection)
  /// or inbound read chunks (kCorruptInbound) let through before firing.
  uint64_t after_frames = 0;
  /// Total fires allowed across the injector's lifetime. The injector is
  /// caller-owned and survives query retries, so the default of 1 makes a
  /// fault a one-shot: attempt 1 hits it, attempt 2 runs clean — exactly
  /// the shape a recovery test needs. 0 = unlimited.
  uint64_t max_fires = 1;
  /// kShortWrites: bytes the kernel is allowed per send().
  size_t write_cap = 7;
  /// Seed choosing which byte of a frame gets flipped.
  uint64_t seed = 0;
};

/// One line of key=value text, for reproduction instructions on failure.
std::string SerializeNetFaultScenario(const NetFaultScenario& scenario);

/// Deterministic link chaos for one FrameChannel. The caller owns the
/// injector and installs it via FrameChannel::set_fault_injector; the
/// channel consults it on every queue/flush/read. Not thread-safe — a
/// channel belongs to one event loop, and so does its injector (it must
/// not be shared across channels that live on different threads).
///
/// State (frames seen, fires) persists across queries: retrying executors
/// reuse the injector, so a max_fires budget spans the retry sequence.
class NetFaultInjector {
 public:
  explicit NetFaultInjector(const NetFaultScenario& scenario);

  NetFaultInjector(const NetFaultInjector&) = delete;
  NetFaultInjector& operator=(const NetFaultInjector&) = delete;

  /// Called when the injector is installed on a (new) channel: clears the
  /// per-link latches (stall, pending drop) so a retry attempt's fresh
  /// socket starts clean while the max_fires budget keeps counting.
  void OnChannelRebind();

  /// Called with a fully encoded outbound frame (length header included)
  /// before it is queued. May flip a byte (kCorruptOutbound), shrink the
  /// frame (kTruncateOutbound), or latch a stall/drop for the flush path.
  /// Sets `*shutdown_write` when the channel should shut down its write
  /// side after sending what is left.
  void OnOutboundFrame(std::vector<std::byte>* frame, bool* shutdown_write);

  /// Called before each send() of `want` bytes; returns how many the
  /// channel may offer the kernel. 0 means "send nothing" — a latched
  /// kStallOutbound swallows traffic until the next channel rebind.
  size_t CapWrite(size_t want);

  /// Called once per flush; true when the connection should be torn down
  /// (shutdown both directions) right now.
  bool ShouldDropConnection();

  /// True while a kStallOutbound fault is latched: the channel must not
  /// write, and must not advertise pending output to poll().
  bool send_stalled() const { return stalled_; }

  /// Called with each raw inbound read chunk before frame reassembly; may
  /// flip a byte (kCorruptInbound).
  void OnInboundBytes(std::byte* data, size_t size);

  /// Faults actually fired so far (for test assertions and diagnostics).
  uint64_t fires() const { return fires_; }

  const NetFaultScenario& scenario() const { return scenario_; }

 private:
  bool Armed() const {
    return scenario_.max_fires == 0 || fires_ < scenario_.max_fires;
  }
  /// Picks the byte of an `size`-byte frame to damage; skips the 4-byte
  /// length header unless the frame is all header, so the damage lands in
  /// the type/payload bytes the receiver can actually validate.
  size_t PickOffset(size_t size);

  const NetFaultScenario scenario_;
  std::mt19937_64 rng_;
  uint64_t outbound_seen_ = 0;
  uint64_t inbound_seen_ = 0;
  uint64_t fires_ = 0;
  /// Per-link latches, cleared by OnChannelRebind.
  bool stalled_ = false;
  bool drop_pending_ = false;
};

}  // namespace mjoin

#endif  // MJOIN_NET_NET_FAULT_H_
