#include "opt/general_query.h"

#include <map>

#include "common/random.h"
#include "common/string_util.h"

namespace mjoin {

int GeneralQuerySpec::AddRelation(std::string name, uint32_t cardinality,
                                  std::shared_ptr<const Schema> schema) {
  relations_.push_back(
      GeneralRelation{std::move(name), cardinality, std::move(schema)});
  return static_cast<int>(relations_.size()) - 1;
}

Status GeneralQuerySpec::AddEquiJoin(int left_rel, size_t left_col,
                                     int right_rel, size_t right_col) {
  if (left_rel < 0 || right_rel < 0 ||
      left_rel >= static_cast<int>(relations_.size()) ||
      right_rel >= static_cast<int>(relations_.size()) ||
      left_rel == right_rel) {
    return Status::InvalidArgument("bad predicate relations");
  }
  for (auto [rel, col] : {std::pair<int, size_t>{left_rel, left_col},
                          {right_rel, right_col}}) {
    const Schema& schema = *relations_[static_cast<size_t>(rel)].schema;
    if (col >= schema.num_columns() ||
        schema.column(col).type != ColumnType::kInt32) {
      return Status::InvalidArgument(
          StrCat("predicate column ", col, " of relation ",
                 relations_[static_cast<size_t>(rel)].name,
                 " missing or not int32"));
    }
  }
  predicates_.push_back(
      GeneralPredicate{left_rel, left_col, right_rel, right_col});
  return Status::OK();
}

JoinGraph GeneralQuerySpec::ToJoinGraph() const {
  JoinGraph graph;
  for (const GeneralRelation& rel : relations_) {
    graph.AddRelation(rel.name, rel.cardinality);
  }
  for (const GeneralPredicate& pred : predicates_) {
    double sel =
        1.0 /
        std::max(relations_[static_cast<size_t>(pred.left_rel)].cardinality,
                 relations_[static_cast<size_t>(pred.right_rel)].cardinality);
    MJOIN_CHECK_OK(graph.AddPredicate(pred.left_rel, pred.right_rel, sel));
  }
  return graph;
}

namespace {

/// Provenance of one output column: (relation index, column index).
using Provenance = std::vector<std::pair<int, size_t>>;

}  // namespace

StatusOr<JoinQuery> GeneralQuerySpec::BindTree(const JoinTree& tree) const {
  MJOIN_RETURN_IF_ERROR(tree.Validate());

  // Relation name -> index.
  std::map<std::string, int> index_of;
  for (size_t i = 0; i < relations_.size(); ++i) {
    index_of[relations_[i].name] = static_cast<int>(i);
  }

  // Column provenance per tree node, bottom-up (concatenating joins).
  auto provenance = std::make_shared<std::vector<Provenance>>(
      tree.num_nodes());
  // Relation set per node, to find the connecting predicate.
  std::vector<uint64_t> rel_set(tree.num_nodes(), 0);
  for (int id : tree.PostOrder()) {
    const JoinTreeNode& node = tree.node(id);
    if (node.is_leaf()) {
      auto it = index_of.find(node.relation);
      if (it == index_of.end()) {
        return Status::NotFound(
            StrCat("tree leaf '", node.relation, "' not in the query spec"));
      }
      int rel = it->second;
      const Schema& schema = *relations_[static_cast<size_t>(rel)].schema;
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        (*provenance)[static_cast<size_t>(id)].push_back({rel, c});
      }
      rel_set[static_cast<size_t>(id)] = 1ULL << rel;
    } else {
      auto& prov = (*provenance)[static_cast<size_t>(id)];
      prov = (*provenance)[static_cast<size_t>(node.left)];
      const auto& right_prov = (*provenance)[static_cast<size_t>(node.right)];
      prov.insert(prov.end(), right_prov.begin(), right_prov.end());
      rel_set[static_cast<size_t>(id)] = rel_set[static_cast<size_t>(node.left)] |
                                         rel_set[static_cast<size_t>(node.right)];
    }
  }

  // Pre-resolve the join keys of every internal node.
  auto keys = std::make_shared<std::map<int, std::pair<size_t, size_t>>>();
  for (int id : tree.PostOrder()) {
    const JoinTreeNode& node = tree.node(id);
    if (node.is_leaf()) continue;
    uint64_t left_set = rel_set[static_cast<size_t>(node.left)];
    uint64_t right_set = rel_set[static_cast<size_t>(node.right)];
    int found = 0;
    std::pair<int, size_t> left_key_src, right_key_src;
    for (const GeneralPredicate& pred : predicates_) {
      uint64_t l = 1ULL << pred.left_rel;
      uint64_t r = 1ULL << pred.right_rel;
      if ((l & left_set) && (r & right_set)) {
        ++found;
        left_key_src = {pred.left_rel, pred.left_col};
        right_key_src = {pred.right_rel, pred.right_col};
      } else if ((l & right_set) && (r & left_set)) {
        ++found;
        left_key_src = {pred.right_rel, pred.right_col};
        right_key_src = {pred.left_rel, pred.left_col};
      }
    }
    if (found == 0) {
      return Status::InvalidArgument(
          StrCat("join#", id, " would be a cartesian product"));
    }
    if (found > 1) {
      return Status::Unimplemented(
          StrCat("join#", id, " is connected by ", found,
                 " predicates; multi-predicate joins need residual filters"));
    }
    // Locate the key columns within each side's provenance.
    auto locate = [&](int side_node,
                      std::pair<int, size_t> src) -> StatusOr<size_t> {
      const Provenance& prov = (*provenance)[static_cast<size_t>(side_node)];
      for (size_t c = 0; c < prov.size(); ++c) {
        if (prov[c] == src) return c;
      }
      return Status::Internal("key column lost in provenance");
    };
    MJOIN_ASSIGN_OR_RETURN(size_t left_key, locate(node.left, left_key_src));
    MJOIN_ASSIGN_OR_RETURN(size_t right_key,
                           locate(node.right, right_key_src));
    (*keys)[id] = {left_key, right_key};
  }

  JoinQuery query;
  query.tree = tree;
  for (const GeneralRelation& rel : relations_) {
    if (rel_set[static_cast<size_t>(tree.root())] &
        (1ULL << index_of[rel.name])) {
      query.base_schemas[rel.name] = rel.schema;
    }
  }
  query.join_spec_factory =
      [keys](const JoinTreeNode& node, std::shared_ptr<const Schema> left,
             std::shared_ptr<const Schema> right) -> StatusOr<JoinSpec> {
    auto it = keys->find(node.id);
    if (it == keys->end()) {
      return Status::Internal(StrCat("no keys resolved for join#", node.id));
    }
    return MakeNaturalConcatJoinSpec(std::move(left), std::move(right),
                                     it->second.first, it->second.second);
  };
  return query;
}

StatusOr<GeneralQueryInstance> MakeRandomSnowflakeQuery(
    int num_relations, uint32_t base_cardinality, uint64_t seed) {
  if (num_relations < 2 || num_relations > 62) {
    return Status::InvalidArgument("need 2..62 relations");
  }
  if (base_cardinality == 0) {
    return Status::InvalidArgument("cardinality must be positive");
  }
  Random rng(seed);
  GeneralQueryInstance instance;

  // Structure: relation i > 0 references a random earlier relation.
  std::vector<int> parent(static_cast<size_t>(num_relations), -1);
  std::vector<uint32_t> cardinality(static_cast<size_t>(num_relations));
  for (int i = 0; i < num_relations; ++i) {
    if (i > 0) parent[static_cast<size_t>(i)] = static_cast<int>(rng.Uniform(
        static_cast<uint64_t>(i)));
    // Vary sizes by up to 4x for interesting optimizer choices.
    cardinality[static_cast<size_t>(i)] =
        base_cardinality << rng.Uniform(3);
  }

  for (int i = 0; i < num_relations; ++i) {
    std::vector<Column> columns = {Column::Int32("pk")};
    if (i > 0) columns.push_back(Column::Int32("fk"));
    columns.push_back(Column::Int32("val"));
    columns.push_back(Column::FixedString("tag", 8));
    auto schema = std::make_shared<const Schema>(std::move(columns));
    instance.spec.AddRelation(StrCat("s", i), cardinality[static_cast<size_t>(i)],
                              schema);

    // Data: pk a permutation; fk uniform over the parent's pk domain.
    Relation rel(*schema);
    rel.Reserve(cardinality[static_cast<size_t>(i)]);
    std::vector<uint32_t> pk =
        rng.Permutation(cardinality[static_cast<size_t>(i)]);
    for (uint32_t t = 0; t < cardinality[static_cast<size_t>(i)]; ++t) {
      TupleWriter w = rel.AppendTuple();
      size_t col = 0;
      w.SetInt32(col++, static_cast<int32_t>(pk[t]));
      if (i > 0) {
        uint32_t parent_card =
            cardinality[static_cast<size_t>(parent[static_cast<size_t>(i)])];
        w.SetInt32(col++, static_cast<int32_t>(rng.Uniform(parent_card)));
      }
      w.SetInt32(col++, static_cast<int32_t>(rng.Uniform(1000)));
      w.SetString(col++, StrCat("t", t % 97));
    }
    instance.data.push_back(std::move(rel));

    if (i > 0) {
      // fk (column 1 of relation i) references parent's pk (column 0).
      MJOIN_RETURN_IF_ERROR(
          instance.spec.AddEquiJoin(i, 1, parent[static_cast<size_t>(i)], 0));
    }
  }
  return instance;
}

}  // namespace mjoin
