#ifndef MJOIN_OPT_GENERAL_QUERY_H_
#define MJOIN_OPT_GENERAL_QUERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "opt/join_graph.h"
#include "plan/query.h"
#include "storage/relation.h"

namespace mjoin {

/// One base relation of a general query: name, cardinality, schema.
struct GeneralRelation {
  std::string name;
  uint32_t cardinality = 0;
  std::shared_ptr<const Schema> schema;
};

/// An equi-join predicate between int32 columns of two relations.
struct GeneralPredicate {
  int left_rel = -1;
  size_t left_col = 0;
  int right_rel = -1;
  size_t right_col = 0;
};

/// A general multi-join query over arbitrary schemas — the engine is not
/// limited to the paper's regular Wisconsin chain. The spec lists base
/// relations and equi-join predicates; BindTree() turns *any* join tree
/// over those relations (e.g. one produced by the phase-1 optimizer) into
/// an executable JoinQuery by tracking column provenance through
/// concatenating joins:
///
///   - every join outputs all left columns followed by all right columns;
///   - a join between two subtrees uses the (single) predicate connecting
///     them, with key columns located via the provenance map.
///
/// Restriction: the predicate graph must connect any two subtrees the tree
/// joins by exactly one predicate (guaranteed for acyclic/tree-shaped
/// query graphs such as chains, stars and snowflakes); multi-predicate
/// joins would need residual filters and are rejected.
class GeneralQuerySpec {
 public:
  /// Adds a relation; returns its index.
  int AddRelation(std::string name, uint32_t cardinality,
                  std::shared_ptr<const Schema> schema);

  /// Adds an equi-join predicate; both columns must be int32.
  Status AddEquiJoin(int left_rel, size_t left_col, int right_rel,
                     size_t right_col);

  const std::vector<GeneralRelation>& relations() const { return relations_; }
  const std::vector<GeneralPredicate>& predicates() const {
    return predicates_;
  }

  /// The optimizer-facing query graph (cardinalities + selectivities from
  /// the containment assumption: 1 / max cardinality of the two sides).
  JoinGraph ToJoinGraph() const;

  /// Binds execution semantics to `tree` (leaf relation names must match
  /// AddRelation names; typically the output of OptimizeJoinOrder over
  /// ToJoinGraph()).
  StatusOr<JoinQuery> BindTree(const JoinTree& tree) const;

 private:
  std::vector<GeneralRelation> relations_;
  std::vector<GeneralPredicate> predicates_;
};

/// A randomly generated snowflake-shaped query plus matching data:
/// relation 0 is the hub; every other relation attaches to a random
/// earlier relation with a foreign key referencing its primary key.
/// Schemas are (pk:i32 permutation, fk:i32 uniform over the parent's pk
/// domain [absent on the hub], val:i32, tag:str8).
struct GeneralQueryInstance {
  GeneralQuerySpec spec;
  /// Matching generated data, one relation per spec entry.
  std::vector<Relation> data;
};

StatusOr<GeneralQueryInstance> MakeRandomSnowflakeQuery(
    int num_relations, uint32_t base_cardinality, uint64_t seed);

}  // namespace mjoin

#endif  // MJOIN_OPT_GENERAL_QUERY_H_
