#ifndef MJOIN_OPT_JOIN_GRAPH_H_
#define MJOIN_OPT_JOIN_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"

namespace mjoin {

/// Statistics the optimizer keeps per base relation.
struct RelationStats {
  std::string name;
  double cardinality = 0;
  /// Distinct values of the join attribute per predicate endpoint are
  /// looked up through JoinPredicate; for the common single-key case this
  /// is the relation-level distinct count of its join column.
  double distinct_keys = 0;
};

/// An equi-join predicate between two relations (by index into the graph's
/// relation list).
struct JoinPredicate {
  int left = -1;
  int right = -1;
  /// Selectivity factor: |L JOIN R| = sel * |L| * |R|. For a key-key
  /// equi-join this is 1 / max(distinct(L), distinct(R)).
  double selectivity = 1.0;
};

/// The input of phase-1 optimization: relations plus the equi-join
/// predicates connecting them (a query graph). The optimizer only
/// considers trees without cartesian products, i.e. joins along edges of
/// this graph (like System R [SAC79]).
class JoinGraph {
 public:
  /// Adds a relation; returns its index.
  int AddRelation(std::string name, double cardinality);

  /// Adds an equi-join edge with the given selectivity.
  Status AddPredicate(int left, int right, double selectivity);

  /// Convenience for key-key joins: selectivity = 1/max(card_l, card_r).
  Status AddKeyJoin(int left, int right);

  size_t num_relations() const { return relations_.size(); }
  const RelationStats& relation(int i) const {
    return relations_[static_cast<size_t>(i)];
  }
  const std::vector<JoinPredicate>& predicates() const { return predicates_; }

  /// True if the graph is connected (otherwise no cartesian-free tree
  /// covers all relations).
  bool IsConnected() const;

  /// Combined selectivity of all predicates with one endpoint in each
  /// bitmask (used when joining two subsets).
  double SelectivityBetween(uint64_t left_set, uint64_t right_set) const;

  /// Builds the paper's regular chain query graph: `n` relations of
  /// `cardinality` tuples joined pairwise with selectivity 1/cardinality
  /// (so every join is 1:1 and every intermediate result has size
  /// `cardinality`).
  static JoinGraph RegularChain(int n, double cardinality);

 private:
  std::vector<RelationStats> relations_;
  std::vector<JoinPredicate> predicates_;
};

}  // namespace mjoin

#endif  // MJOIN_OPT_JOIN_GRAPH_H_
