#include "opt/optimizer.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "common/string_util.h"

namespace mjoin {

namespace {

struct DpEntry {
  double cost = std::numeric_limits<double>::infinity();
  double cardinality = 0;
  uint64_t left = 0;   // 0 for single relations
  uint64_t right = 0;
  // Join height of the subplan; used to break cost ties in favour of
  // bushier (shallower) trees, which phase 2 parallelizes better (§5:
  // "if it is possible to choose between a linear and a bushy tree with
  // (almost) equal processing costs, the bushy one should be chosen").
  int height = 0;
};

Status CheckGraph(const JoinGraph& graph) {
  if (graph.num_relations() < 2) {
    return Status::InvalidArgument("need at least two relations");
  }
  if (graph.num_relations() > 63) {
    return Status::InvalidArgument("more than 63 relations not supported");
  }
  if (!graph.IsConnected()) {
    return Status::InvalidArgument(
        "query graph is disconnected: every cartesian-free tree would be "
        "incomplete");
  }
  return Status::OK();
}

// Estimated cardinality of joining subsets a and b given card(a), card(b).
double JoinCardinality(const JoinGraph& graph, uint64_t a, double card_a,
                       uint64_t b, double card_b) {
  double sel = graph.SelectivityBetween(a, b);
  if (sel < 0) return -1;  // cartesian product
  return std::max(1.0, card_a * card_b * sel);
}

// Recursively materializes the DP solution as a JoinTree.
int EmitTree(const JoinGraph& graph,
             const std::map<uint64_t, DpEntry>& table, uint64_t set,
             JoinTree* tree) {
  const DpEntry& entry = table.at(set);
  if (entry.left == 0) {
    int index = std::countr_zero(set);
    return tree->AddLeaf(graph.relation(index).name,
                         graph.relation(index).cardinality);
  }
  int left = EmitTree(graph, table, entry.left, tree);
  int right = EmitTree(graph, table, entry.right, tree);
  return tree->AddJoin(left, right, entry.cardinality);
}

}  // namespace

StatusOr<JoinTree> OptimizeDp(const JoinGraph& graph,
                              const TotalCostModel& cost_model,
                              const OptimizerOptions& options) {
  MJOIN_RETURN_IF_ERROR(CheckGraph(graph));
  size_t n = graph.num_relations();
  uint64_t full = (n == 64) ? ~0ULL : ((1ULL << n) - 1);

  std::map<uint64_t, DpEntry> table;
  for (size_t i = 0; i < n; ++i) {
    DpEntry entry;
    entry.cost = 0;
    entry.cardinality = graph.relation(static_cast<int>(i)).cardinality;
    table[1ULL << i] = entry;
  }

  // Enumerate subsets in increasing popcount so both halves of every split
  // are already solved.
  std::vector<std::vector<uint64_t>> by_size(n + 1);
  for (uint64_t set = 1; set <= full; ++set) {
    by_size[static_cast<size_t>(std::popcount(set))].push_back(set);
  }

  for (size_t size = 2; size <= n; ++size) {
    for (uint64_t set : by_size[size]) {
      DpEntry best;
      // Iterate all proper non-empty subsets as the left (build) operand.
      for (uint64_t left = (set - 1) & set; left != 0;
           left = (left - 1) & set) {
        uint64_t right = set & ~left;
        auto it_left = table.find(left);
        auto it_right = table.find(right);
        if (it_left == table.end() || it_right == table.end()) continue;
        if (options.linear_only && std::popcount(left) != 1 &&
            std::popcount(right) != 1) {
          continue;
        }
        double card = JoinCardinality(graph, left, it_left->second.cardinality,
                                      right, it_right->second.cardinality);
        if (card < 0) continue;  // cartesian product: not considered
        double cost =
            it_left->second.cost + it_right->second.cost +
            cost_model.JoinCost(it_left->second.cardinality,
                                std::popcount(left) == 1,
                                it_right->second.cardinality,
                                std::popcount(right) == 1, card);
        int height =
            1 + std::max(it_left->second.height, it_right->second.height);
        bool better = cost < best.cost - 1e-9;
        bool tie_but_bushier =
            cost <= best.cost + 1e-9 && height < best.height;
        if (better || tie_but_bushier) {
          best.cost = cost;
          best.cardinality = card;
          best.left = left;
          best.right = right;
          best.height = height;
        }
      }
      if (best.left != 0) table[set] = best;
    }
  }

  auto it = table.find(full);
  if (it == table.end() || it->second.left == 0) {
    return Status::Internal("no cartesian-free plan found (disconnected?)");
  }
  JoinTree tree;
  EmitTree(graph, table, full, &tree);
  MJOIN_RETURN_IF_ERROR(tree.Validate());
  cost_model.Annotate(&tree);
  return tree;
}

StatusOr<JoinTree> OptimizeGreedy(const JoinGraph& graph,
                                  const TotalCostModel& cost_model) {
  MJOIN_RETURN_IF_ERROR(CheckGraph(graph));
  size_t n = graph.num_relations();

  JoinTree tree;
  struct Component {
    uint64_t set = 0;
    int root = -1;
    double cardinality = 0;
  };
  std::vector<Component> components;
  for (size_t i = 0; i < n; ++i) {
    Component c;
    c.set = 1ULL << i;
    c.root = tree.AddLeaf(graph.relation(static_cast<int>(i)).name,
                          graph.relation(static_cast<int>(i)).cardinality);
    c.cardinality = graph.relation(static_cast<int>(i)).cardinality;
    components.push_back(c);
  }

  while (components.size() > 1) {
    double best_card = std::numeric_limits<double>::infinity();
    size_t best_a = 0, best_b = 0;
    for (size_t a = 0; a < components.size(); ++a) {
      for (size_t b = a + 1; b < components.size(); ++b) {
        double card = JoinCardinality(graph, components[a].set,
                                      components[a].cardinality,
                                      components[b].set,
                                      components[b].cardinality);
        if (card >= 0 && card < best_card) {
          best_card = card;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (!std::isfinite(best_card)) {
      return Status::Internal("greedy got stuck (disconnected subgraphs)");
    }
    Component merged;
    merged.set = components[best_a].set | components[best_b].set;
    merged.root = tree.AddJoin(components[best_a].root,
                               components[best_b].root, best_card);
    merged.cardinality = best_card;
    components.erase(components.begin() + static_cast<long>(best_b));
    components[best_a] = merged;
  }
  tree.SetRoot(components[0].root);
  MJOIN_RETURN_IF_ERROR(tree.Validate());
  cost_model.Annotate(&tree);
  return tree;
}

StatusOr<JoinTree> OptimizeJoinOrder(const JoinGraph& graph,
                                     const TotalCostModel& cost_model,
                                     const OptimizerOptions& options) {
  if (static_cast<int>(graph.num_relations()) <= options.max_dp_relations) {
    return OptimizeDp(graph, cost_model, options);
  }
  return OptimizeGreedy(graph, cost_model);
}

}  // namespace mjoin
