#ifndef MJOIN_OPT_OPTIMIZER_H_
#define MJOIN_OPT_OPTIMIZER_H_

#include "common/statusor.h"
#include "opt/join_graph.h"
#include "plan/cost_model.h"
#include "plan/join_tree.h"

namespace mjoin {

/// Options for phase-1 optimization (finding the join tree with minimal
/// total cost, which phase 2 — the four strategies — then parallelizes).
struct OptimizerOptions {
  /// Restrict the search to linear trees (every join has at least one
  /// base-relation operand), like System R [SAC79]. The paper (following
  /// [KBZ86]) argues bushy trees matter for parallel systems, so the
  /// default searches the full space.
  bool linear_only = false;
  /// Queries larger than this fall back to the greedy heuristic (the DP
  /// enumerates up to 3^n subproblem pairs).
  int max_dp_relations = 14;
};

/// Exhaustive dynamic programming over connected subgraphs (DPsub):
/// returns the cartesian-product-free join tree with minimal total cost
/// under `cost_model`. Supports up to 63 relations structurally but is
/// exponential; use OptimizeJoinOrder for automatic fallback.
StatusOr<JoinTree> OptimizeDp(const JoinGraph& graph,
                              const TotalCostModel& cost_model,
                              const OptimizerOptions& options);

/// Greedy operator ordering (GOO): repeatedly joins the connected pair of
/// sub-plans with the smallest result cardinality. Polynomial, bushy,
/// generally good but not optimal.
StatusOr<JoinTree> OptimizeGreedy(const JoinGraph& graph,
                                  const TotalCostModel& cost_model);

/// Phase 1 of the paper's two-phase optimization: DP when the query is
/// small enough, greedy otherwise. The returned tree is annotated with
/// join costs and subtree costs.
StatusOr<JoinTree> OptimizeJoinOrder(const JoinGraph& graph,
                                     const TotalCostModel& cost_model,
                                     const OptimizerOptions& options = {});

}  // namespace mjoin

#endif  // MJOIN_OPT_OPTIMIZER_H_
