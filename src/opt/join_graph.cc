#include "opt/join_graph.h"

#include <algorithm>

#include "common/string_util.h"

namespace mjoin {

int JoinGraph::AddRelation(std::string name, double cardinality) {
  RelationStats stats;
  stats.name = std::move(name);
  stats.cardinality = cardinality;
  stats.distinct_keys = cardinality;  // key column by default
  relations_.push_back(std::move(stats));
  return static_cast<int>(relations_.size()) - 1;
}

Status JoinGraph::AddPredicate(int left, int right, double selectivity) {
  if (left < 0 || right < 0 ||
      left >= static_cast<int>(relations_.size()) ||
      right >= static_cast<int>(relations_.size()) || left == right) {
    return Status::InvalidArgument(
        StrCat("bad predicate endpoints ", left, ", ", right));
  }
  if (selectivity <= 0 || selectivity > 1) {
    return Status::InvalidArgument(
        StrCat("selectivity must be in (0, 1], got ", selectivity));
  }
  predicates_.push_back(JoinPredicate{left, right, selectivity});
  return Status::OK();
}

Status JoinGraph::AddKeyJoin(int left, int right) {
  if (left < 0 || right < 0 ||
      left >= static_cast<int>(relations_.size()) ||
      right >= static_cast<int>(relations_.size())) {
    return Status::InvalidArgument("bad key-join endpoints");
  }
  double sel = 1.0 / std::max(relation(left).cardinality,
                              relation(right).cardinality);
  return AddPredicate(left, right, sel);
}

bool JoinGraph::IsConnected() const {
  if (relations_.empty()) return false;
  std::vector<bool> seen(relations_.size(), false);
  std::vector<int> stack = {0};
  seen[0] = true;
  size_t reached = 1;
  while (!stack.empty()) {
    int node = stack.back();
    stack.pop_back();
    for (const JoinPredicate& pred : predicates_) {
      int other = -1;
      if (pred.left == node) other = pred.right;
      if (pred.right == node) other = pred.left;
      if (other >= 0 && !seen[static_cast<size_t>(other)]) {
        seen[static_cast<size_t>(other)] = true;
        ++reached;
        stack.push_back(other);
      }
    }
  }
  return reached == relations_.size();
}

double JoinGraph::SelectivityBetween(uint64_t left_set,
                                     uint64_t right_set) const {
  double selectivity = 1.0;
  bool any = false;
  for (const JoinPredicate& pred : predicates_) {
    uint64_t l = 1ULL << pred.left;
    uint64_t r = 1ULL << pred.right;
    if (((l & left_set) && (r & right_set)) ||
        ((l & right_set) && (r & left_set))) {
      selectivity *= pred.selectivity;
      any = true;
    }
  }
  return any ? selectivity : -1.0;  // -1 signals a cartesian product
}

JoinGraph JoinGraph::RegularChain(int n, double cardinality) {
  JoinGraph graph;
  for (int i = 0; i < n; ++i) {
    graph.AddRelation(StrCat("rel", i), cardinality);
  }
  for (int i = 0; i + 1 < n; ++i) {
    MJOIN_CHECK_OK(graph.AddPredicate(i, i + 1, 1.0 / cardinality));
  }
  return graph;
}

}  // namespace mjoin
