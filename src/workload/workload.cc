#include "workload/workload.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "plan/wisconsin_query.h"
#include "storage/wisconsin.h"
#include "storage/zipf.h"

namespace mjoin {

uint32_t WorkloadSpec::domain() const {
  uint32_t f = std::max(1u, fanout);
  return std::max(1u, cardinality / f);
}

Status WorkloadSpec::Validate() const {
  if (num_relations < 2) {
    return Status::InvalidArgument("workload needs >= 2 relations");
  }
  if (cardinality == 0) {
    return Status::InvalidArgument("workload cardinality must be positive");
  }
  if (zipf_theta < 0) {
    return Status::InvalidArgument("zipf theta must be >= 0");
  }
  if (!(selectivity > 0.0 && selectivity <= 1.0)) {
    return Status::InvalidArgument("selectivity must be in (0, 1]");
  }
  if (fanout < 1 || fanout > cardinality) {
    return Status::InvalidArgument("fanout must be in [1, cardinality]");
  }
  for (const FilterPredicate& filter : filters) {
    if (filter.column >= kStringU1) {
      return Status::InvalidArgument(
          StrCat("workload filter column ", filter.column,
                 " is not an int32 Wisconsin column"));
    }
  }
  return Status::OK();
}

std::string WorkloadSpec::ToString() const {
  std::string out = StrCat(name, "(n=", num_relations, " card=", cardinality,
                           " theta=", zipf_theta, " sel=", selectivity,
                           " fanout=", fanout, " seed=", seed);
  for (const FilterPredicate& filter : filters) {
    out += StrCat(" filter=", filter.ToString(WisconsinSchema()));
  }
  out += ")";
  return out;
}

StatusOr<WorkloadSpec> WorkloadPreset(const std::string& name) {
  WorkloadSpec spec;
  spec.name = name;
  // The skewed presets ship smaller default cardinalities than the 1:1
  // ones: a theta-1 join's output is ~ cardinality * sum(p_i^2) times its
  // input, so each join of a chain multiplies the stream — the preset
  // sizes keep a 3-relation chain's final result in the low hundreds of
  // thousands of rows. Callers who override --card own the blowup.
  if (name == "uniform") return spec;
  if (name == "zipf1") {
    spec.zipf_theta = 1.0;
    spec.cardinality = 400;
    return spec;
  }
  if (name == "zipf1-mn") {
    spec.zipf_theta = 1.0;
    spec.fanout = 4;
    spec.cardinality = 400;
    return spec;
  }
  if (name == "mn") {
    spec.fanout = 4;
    spec.cardinality = 2000;
    return spec;
  }
  if (name == "filtered") {
    spec.selectivity = 0.5;
    return spec;
  }
  if (name == "adversarial") {
    spec.zipf_theta = 1.0;
    spec.fanout = 4;
    spec.selectivity = 0.5;
    spec.cardinality = 1000;
    return spec;
  }
  std::string valid;
  for (const std::string& preset : WorkloadPresetNames()) {
    valid += valid.empty() ? preset : StrCat(", ", preset);
  }
  return Status::InvalidArgument(
      StrCat("unknown workload preset '", name, "' (valid: ", valid, ")"));
}

std::vector<std::string> WorkloadPresetNames() {
  return {"uniform", "zipf1", "zipf1-mn", "mn", "filtered", "adversarial"};
}

Relation GenerateWorkloadRelation(const WorkloadSpec& spec,
                                  int relation_index) {
  MJOIN_CHECK(spec.Validate().ok());
  MJOIN_CHECK(relation_index >= 0 && relation_index < spec.num_relations);
  static const char* kString4Values[] = {"AAAA", "HHHH", "OOOO", "VVVV"};

  const uint32_t domain = spec.domain();
  const int64_t cardinality = spec.cardinality;
  // Miss values are unique per (relation, column): above the match domain
  // and in disjoint per-column ranges, so a missed row matches nothing in
  // any relation — exactly the (1 - selectivity) fraction the Bloom
  // transfer can prove away.
  int64_t miss_next_u1 = domain + (2 * relation_index) * cardinality;
  int64_t miss_next_u2 = domain + (2 * relation_index + 1) * cardinality;

  Relation rel(WisconsinSchema());
  rel.Reserve(spec.cardinality);
  Random rng(Mix64(spec.seed) ^
             Mix64(static_cast<uint64_t>(relation_index) + 1));
  ZipfGenerator zipf(domain, spec.zipf_theta);

  for (uint32_t i = 0; i < spec.cardinality; ++i) {
    // The Zipf rank-to-value map is the identity for every relation and
    // both columns: value 0 is the hottest everywhere, so build-side hot
    // keys meet probe-side hot keys at every join of the chain.
    int32_t u1 = rng.NextDouble() < spec.selectivity
                     ? static_cast<int32_t>(zipf.Next(&rng))
                     : static_cast<int32_t>(miss_next_u1++);
    int32_t u2 = rng.NextDouble() < spec.selectivity
                     ? static_cast<int32_t>(zipf.Next(&rng))
                     : static_cast<int32_t>(miss_next_u2++);
    const int32_t values[kStringU1] = {
        u1,           u2,          u1 % 2,  u1 % 4,
        u1 % 10,      u1 % 20,     u1 % 100, u1 % 10,
        u1 % 5,       u1 % 2,      u1,       (u1 % 100) * 2,
        (u1 % 100) * 2 + 1};
    bool keep = true;
    for (const FilterPredicate& filter : spec.filters) {
      if (!filter.Matches(values[filter.column])) {
        keep = false;
        break;
      }
    }
    if (!keep) continue;
    TupleWriter w = rel.AppendTuple();
    for (size_t c = 0; c < kStringU1; ++c) {
      w.SetInt32(c, values[c]);
    }
    w.SetString(kStringU1, WisconsinString(u1));
    w.SetString(kStringU2, WisconsinString(u2));
    w.SetString(kString4, std::string(52, kString4Values[i % 4][0]));
  }
  return rel;
}

StatusOr<Database> MakeWorkloadDatabase(const WorkloadSpec& spec) {
  Status valid = spec.Validate();
  if (!valid.ok()) return valid;
  Database db;
  std::vector<std::string> names = WisconsinRelationNames(spec.num_relations);
  for (int r = 0; r < spec.num_relations; ++r) {
    Status added = db.Add(names[r], GenerateWorkloadRelation(spec, r));
    if (!added.ok()) return added;
  }
  return db;
}

Status AnalyzeWorkload(const WorkloadSpec& spec, const Database& db,
                       Catalog* catalog) {
  std::vector<std::string> names = WisconsinRelationNames(spec.num_relations);
  for (const std::string& name : names) {
    StatusOr<const Relation*> rel = db.Get(name);
    if (!rel.ok()) return rel.status();
    for (size_t column : {kUnique1, kUnique2}) {
      Status analyzed = catalog->Analyze(name, **rel, column);
      if (!analyzed.ok()) return analyzed;
    }
  }
  return Status::OK();
}

}  // namespace mjoin
