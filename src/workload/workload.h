#ifndef MJOIN_WORKLOAD_WORKLOAD_H_
#define MJOIN_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "engine/database.h"
#include "exec/filter.h"
#include "plan/catalog.h"
#include "storage/relation.h"

namespace mjoin {

/// Declarative workload description: how adversarial the data fed to the
/// Wisconsin chain query should be. The generator produces
/// Wisconsin-shaped relations (same 16-column schema, same derived and
/// string attributes) whose *join columns* (unique1/unique2) follow the
/// spec instead of being 1:1 permutations:
///
///  - zipf_theta: both join columns draw iid Zipf(theta) values over a
///    shared domain of `domain()` distinct values. Theta 0 is uniform;
///    theta 1 the classic Zipf. The Zipf rank-to-value mapping is the
///    identity for every relation and both columns, so the hot values of
///    a build side are the hot values of its probe side — worst case for
///    hash declustering, by design (the paper's §3.5 assumption broken
///    as hard as the theta allows).
///  - fanout: shrinks the value domain to cardinality/fanout, making each
///    join m:n with an average multiplicity of `fanout` per side.
///  - selectivity: each join-column value is, with probability
///    1 - selectivity, replaced by a "miss" value unique to that
///    (relation, column) pair — it matches nothing anywhere, so about
///    `selectivity` of each probe side can find partners and the rest is
///    provably prunable (what Bloom predicate transfer exploits).
///  - filters: generation-time predicates; rows failing any predicate are
///    dropped, so the relation lands pre-filtered with honest statistics.
///
/// Every field is part of the reproducible identity of the workload: the
/// same spec (including seed) generates byte-identical relations.
struct WorkloadSpec {
  std::string name = "custom";
  int num_relations = 3;
  uint32_t cardinality = 10000;
  double zipf_theta = 0.0;
  double selectivity = 1.0;
  uint32_t fanout = 1;
  std::vector<FilterPredicate> filters;
  uint64_t seed = 0x5eed;

  /// Distinct matchable join-column values: cardinality / fanout, >= 1.
  uint32_t domain() const;

  /// Field sanity: >= 2 relations, positive cardinality, theta >= 0,
  /// selectivity in (0, 1], fanout in [1, cardinality], filter columns
  /// int32 and in range.
  [[nodiscard]] Status Validate() const;

  /// One line naming every axis, e.g.
  /// "zipf1-mn(n=3 card=10000 theta=1 sel=1 fanout=4 seed=0x5eed)" —
  /// printed by failing runs so the exact workload can be regenerated.
  std::string ToString() const;
};

/// Named reproducible shapes, usable from benches, tests and mjoin_cli:
///   uniform     theta 0, 1:1, selectivity 1 (the baseline)
///   zipf1       theta 1.0, 1:1
///   zipf1-mn    theta 1.0, fanout 4 (the acceptance shape)
///   mn          theta 0, fanout 4
///   filtered    theta 0, selectivity 0.5 (half of each probe prunable)
///   adversarial theta 1.0, fanout 4, selectivity 0.5
/// Unknown names are InvalidArgument listing the valid ones.
StatusOr<WorkloadSpec> WorkloadPreset(const std::string& name);
std::vector<std::string> WorkloadPresetNames();

/// Generates relation `relation_index` of the spec (deterministic in
/// (spec, index)). Requires spec.Validate().ok().
Relation GenerateWorkloadRelation(const WorkloadSpec& spec,
                                  int relation_index);

/// Generates the whole database: rel0..relN-1 per the spec.
StatusOr<Database> MakeWorkloadDatabase(const WorkloadSpec& spec);

/// Scans the generated relations' join columns (unique1, unique2) into
/// `catalog` — honest statistics of what was actually generated, filters
/// and misses included, for the optimizer and for skew diagnostics.
[[nodiscard]] Status AnalyzeWorkload(const WorkloadSpec& spec,
                                     const Database& db, Catalog* catalog);

}  // namespace mjoin

#endif  // MJOIN_WORKLOAD_WORKLOAD_H_
