// Ablation: [CLY92]'s memory-driven segmentation of right-deep trees. The
// plain RD strategy turns a right-linear tree into ONE segment, keeping
// all nine build tables in memory at once; with a per-node memory budget
// that does not fit them, its work pays the disk-traffic penalty. The
// memory-constrained variant splits the chain into segments whose build
// tables fit, materializing the handoff between segments instead.
#include <cstdio>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "engine/database.h"
#include "engine/sim_executor.h"
#include "plan/wisconsin_query.h"
#include "strategy/rd.h"

using namespace mjoin;

namespace {

struct RunResult {
  double seconds;
  size_t segments_hint;  // number of stored results = segment handoffs + 1
};

RunResult Run(const JoinQuery& query, const Database& db, uint32_t procs,
              double max_build_tuples, size_t memory_limit) {
  SegmentedRightDeepStrategy strategy(max_build_tuples);
  auto plan = strategy.Parallelize(query, procs, TotalCostModel());
  MJOIN_CHECK(plan.ok()) << plan.status();
  SimExecutor executor(&db);
  SimExecOptions options;
  options.costs.memory_per_node_bytes = memory_limit;
  auto run = executor.Execute(*plan, options);
  MJOIN_CHECK(run.ok()) << run.status();
  return {run->response_seconds, static_cast<size_t>(plan->num_results)};
}

}  // namespace

int main() {
  constexpr int kRelations = 10;
  constexpr uint32_t kCardinality = 5000;
  constexpr uint32_t kProcs = 40;
  Database db = MakeWisconsinDatabase(kRelations, kCardinality, /*seed=*/41);
  auto query = MakeWisconsinChainQuery(QueryShape::kRightLinear, kRelations,
                                       kCardinality);
  MJOIN_CHECK(query.ok());

  // Per-node budget ~ three build tables' worth of fragments.
  size_t tight = 3 * static_cast<size_t>(kCardinality) * 208 / kProcs * 2;

  std::printf(
      "CLY92 memory-driven RD segmentation, right-linear tree, "
      "%u tuples/relation, P=%u.\nsegment budget = max build tuples a "
      "segment may hash; per-node memory %s (8x penalty\nwhen over).\n\n",
      kCardinality, kProcs, FormatBytes(tight).c_str());

  TablePrinter table({"segment budget [tuples]", "stored results",
                      "ample memory [s]", "tight memory [s]"});
  struct Budget {
    const char* label;
    double max_build;
  };
  for (const Budget& budget :
       {Budget{"unlimited (1 segment)", 0},
        Budget{"20000 (4 builds/seg)", 20000},
        Budget{"10000 (2 builds/seg)", 10000},
        Budget{"5000  (1 build/seg)", 5000}}) {
    RunResult ample = Run(*query, db, kProcs, budget.max_build, 0);
    RunResult constrained = Run(*query, db, kProcs, budget.max_build, tight);
    table.AddRow({budget.label, StrCat(ample.segments_hint),
                  FormatDouble(ample.seconds, 1),
                  FormatDouble(constrained.seconds, 1)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nExpected: with ample memory the single segment (maximal "
      "pipelining) wins; under a\ntight budget the memory-fitting "
      "segmentation wins — exactly why [CLY92] sizes\nsegments by memory "
      "capacity.\n");
  return 0;
}
