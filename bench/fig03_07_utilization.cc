// Reproduces Figures 2-7 of the paper: the example 5-way join tree, its
// right-deep segments (Figure 5), and the idealized processor-utilization
// diagrams of the four strategies on a 10-processor system (Figures 3, 4,
// 6 and 7). Each join is drawn with its numeric label, which also gives
// its relative amount of work (1, 5, 3, 4).
#include <cstdio>
#include <map>

#include "plan/segments.h"
#include "plan/shapes.h"
#include "strategy/idealized.h"

using namespace mjoin;

int main() {
  std::vector<std::pair<int, int>> labels;
  JoinTree tree = BuildFigure2ExampleTree(&labels);

  std::printf("Figure 2: the example 5-way join tree\n%s\n",
              tree.ToString().c_str());

  std::map<int, double> work;
  for (auto [node, label] : labels) work[node] = label;

  // Figure 5: the right-deep segments (requires join costs = work).
  JoinTree annotated = tree;
  for (int id : annotated.PostOrder()) {
    JoinTreeNode& node = annotated.mutable_node(id);
    node.join_cost = node.is_leaf() ? 0 : work[id];
    node.subtree_cost = node.is_leaf()
                            ? 0
                            : node.join_cost +
                                  annotated.node(node.left).subtree_cost +
                                  annotated.node(node.right).subtree_cost;
  }
  SegmentedTree segmented = SegmentedTree::Build(annotated);
  std::printf("Figure 5: right-deep segments of the example tree\n%s\n",
              segmented.ToString(annotated).c_str());

  struct Panel {
    StrategyKind strategy;
    const char* figure;
  };
  const Panel panels[] = {
      {StrategyKind::kSP, "Figure 3: Sequential Parallel (SP)"},
      {StrategyKind::kSE, "Figure 4: Synchronous Execution (SE)"},
      {StrategyKind::kRD, "Figure 6: Segmented Right-Deep (RD)"},
      {StrategyKind::kFP, "Figure 7: Full Parallel (FP)"},
  };
  constexpr uint32_t kProcessors = 10;
  for (const Panel& panel : panels) {
    auto blocks =
        IdealizedUtilization(panel.strategy, tree, work, kProcessors);
    if (!blocks.ok()) {
      std::fprintf(stderr, "FAILED: %s\n",
                   blocks.status().ToString().c_str());
      return 1;
    }
    std::printf("%s — idealized utilization on %u processors\n%s\n",
                panel.figure, kProcessors,
                RenderIdealized(*blocks, kProcessors).c_str());
  }
  return 0;
}
