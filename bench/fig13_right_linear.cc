// Reproduces Figure_13 of the paper: the right_linear query tree.
#include "bench/figure_main.h"

int main() {
  return mjoin::FigureMain(mjoin::QueryShape::kRightLinear, "Figure_13");
}
