// Extension: data skew — offense and defense. The paper's experiments
// assume "non-skewed data partitioning" (§3.5) and leave real-life
// workloads as future work (§5). The workload generator plays offense:
// Zipf(theta) join keys pile the hot fragment onto one processor, m:n
// fanout multiplies the hot key through every join of the chain, and
// selectivity < 1 adds probe rows that provably match nothing. The skew
// defense (hot-key repartitioning + Bloom predicate transfer) plays
// defense on the same plans.
//
// Two parts, written as JSON (committed as BENCH_skew.json):
//
//   sweep:    theta x fanout x selectivity x strategy x defense on the
//             thread backend — wall clock, result checksum vs the
//             reference, and the defense counters for every cell.
//   headline: the adversarial workload (Zipf(1.0), m:n fanout 4,
//             selectivity 0.25) on the process backend's shm data plane
//             at 8 workers, defense off vs on: wall-clock speedup and
//             max/mean per-processor busy-time imbalance, from the same
//             trace machinery that renders the utilization diagrams.
//
// Queries are right-linear chains: every intermediate result crosses a
// hash-split probe edge — the edge the defense reroutes and prunes.
// (Left-linear chains feed intermediates into build slots and probe from
// colocated scans; there is nothing to defend there.)
//
// Flags: --smoke (tiny sweep, 1 rep — the CI guard),
//        --out=FILE (default BENCH_skew.json),
//        --workers=N (process backend; default 0 = one per processor).
#include <cstdint>
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "common/logging.h"
#include "engine/database.h"
#include "engine/process_executor.h"
#include "engine/reference.h"
#include "engine/thread_executor.h"
#include "engine/thread_trace.h"
#include "plan/wisconsin_query.h"
#include "skew/defense.h"
#include "strategy/strategy.h"
#include "workload/workload.h"

namespace mjoin {
namespace {

struct Config {
  bool smoke = false;
  std::string out = "BENCH_skew.json";
  int relations = 4;
  uint32_t processors = 8;
  uint32_t workers = 0;  // 0 = one per processor
  int reps = 3;
  // Zipf(1) m:n chains diverge geometrically: at selectivity 1.0 each
  // extra join multiplies the intermediate by ~card * sum(p_k^2), so the
  // sweep runs short chains at modest cardinality to keep its worst cell
  // (theta=1, fanout=4, selectivity=1.0) near ~250 K result rows. The
  // headline scales the cardinality up but keeps selectivity at 0.25.
  int sweep_relations = 3;
  uint32_t sweep_cardinality = 400;
  uint32_t headline_cardinality = 2000;
};

// Bench-scale detection thresholds: the generated hot keys hold tens of
// rows, so the production defaults (min_hot_count=256) would never fire.
SkewDefenseOptions BenchDefense(SkewDefenseMode mode) {
  SkewDefenseOptions defense;
  defense.mode = mode;
  defense.min_hot_count = 12;
  defense.hot_fraction = 0.05;
  // The default 1 Mi-bit filters are sized for production builds; at a
  // few thousand build keys, 32 Ki bits keeps the false-positive rate
  // under a percent at 1/32 the report/directive wire cost.
  defense.bloom_bits = 1u << 15;
  return defense;
}

WorkloadSpec SweepSpec(const Config& cfg, double theta, uint32_t fanout,
                       double selectivity, uint32_t cardinality) {
  WorkloadSpec spec;
  spec.name = "sweep";
  spec.num_relations = cfg.sweep_relations;
  spec.cardinality = cardinality;
  spec.zipf_theta = theta;
  spec.fanout = fanout;
  spec.selectivity = selectivity;
  spec.seed = 37;
  return spec;
}

// Defense counters summed over a run's per-op metrics.
struct SkewCounters {
  uint64_t hot_keys = 0;
  uint64_t replicated = 0;
  uint64_t repartitioned = 0;
  uint64_t bloom_filtered = 0;
};

SkewCounters SumCounters(const std::vector<ThreadOpStats>& per_op) {
  SkewCounters out;
  for (const ThreadOpStats& op : per_op) {
    out.hot_keys += op.metrics.skew_hot_keys;
    out.replicated += op.metrics.skew_replicated_rows;
    out.repartitioned += op.metrics.skew_repartitioned_rows;
    out.bloom_filtered += op.metrics.skew_bloom_filtered_rows;
  }
  return out;
}

// Busy seconds per trace lane (kBlocked is waiting, not work).
std::vector<double> BusyByWorker(const ThreadTraceRecorder& trace) {
  std::vector<double> busy(trace.num_workers(), 0.0);
  for (uint32_t w = 0; w < trace.num_workers(); ++w) {
    for (const ThreadTraceEvent& event : trace.events_by_worker()[w]) {
      if (event.type == ThreadWorkType::kBlocked) continue;
      busy[w] += static_cast<double>(event.end_ns - event.start_ns) / 1e9;
    }
  }
  return busy;
}

// max/mean of the per-lane busy seconds; 0 when the trace is empty.
double BusyImbalance(const std::vector<double>& busy) {
  double max = 0, sum = 0;
  for (double b : busy) {
    if (b > max) max = b;
    sum += b;
  }
  double mean = busy.empty() ? 0 : sum / static_cast<double>(busy.size());
  return mean > 0 ? max / mean : 0;
}

struct SweepRow {
  double theta = 0;
  uint32_t fanout = 1;
  double selectivity = 1;
  StrategyKind strategy = StrategyKind::kSP;
  SkewDefenseMode defense = SkewDefenseMode::kOff;
  double wall = 0;
  uint64_t result_rows = 0;
  bool verified = false;
  SkewCounters counters;
};

struct HeadlineSide {
  double wall = 0;
  double imbalance = 0;
  std::vector<double> busy;
  uint64_t shm_bytes_sent = 0;
  SkewCounters counters;
};

struct Headline {
  WorkloadSpec spec;
  HeadlineSide off;
  HeadlineSide on;
};

HeadlineSide RunHeadlineSide(const Database& db, const ParallelPlan& plan,
                             const ResultSummary& reference,
                             const Config& cfg, SkewDefenseMode mode) {
  HeadlineSide side;
  ProcessExecutor processes(&db);
  for (int rep = 0; rep < cfg.reps; ++rep) {
    ProcessExecOptions options;
    options.exec.collect_metrics = true;
    options.exec.record_trace = true;
    options.exec.skew_defense = BenchDefense(mode);
    options.num_workers = cfg.workers;
    options.use_shm_data_plane = true;
    auto run = processes.Execute(plan, options);
    MJOIN_CHECK(run.ok()) << run.status();
    MJOIN_CHECK(run->exec.result == reference)
        << "headline run diverged from the reference, defense="
        << SkewDefenseModeName(mode);
    if (side.wall == 0 || run->exec.wall_seconds < side.wall) {
      side.wall = run->exec.wall_seconds;
      side.busy = run->exec.trace != nullptr
                      ? BusyByWorker(*run->exec.trace)
                      : std::vector<double>();
      side.imbalance = BusyImbalance(side.busy);
      side.shm_bytes_sent = run->net.shm_bytes_sent;
      side.counters = SumCounters(run->exec.stats.per_op);
    }
  }
  return side;
}

int Main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      cfg.smoke = true;
      cfg.reps = 1;
      cfg.sweep_cardinality = 400;
      cfg.headline_cardinality = 2000;
    } else if (arg.rfind("--out=", 0) == 0) {
      cfg.out = arg.substr(6);
    } else if (arg.rfind("--workers=", 0) == 0) {
      cfg.workers = static_cast<uint32_t>(std::stoul(arg.substr(10)));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  // ------------------------------------------------------------------
  // Sweep: theta x fanout x selectivity x strategy x defense, thread
  // backend. Smoke keeps one cell per axis end so the CI run stays fast.
  // ------------------------------------------------------------------
  std::vector<double> thetas = cfg.smoke ? std::vector<double>{1.0}
                                         : std::vector<double>{0.0, 1.0};
  std::vector<uint32_t> fanouts =
      cfg.smoke ? std::vector<uint32_t>{4} : std::vector<uint32_t>{1, 4};
  // Smoke keeps both selectivity ends: 1.0 is the repartition showcase
  // (every probe key matches, so the win is queue-balance), 0.25 the
  // Bloom showcase (75% of probe rows prune pre-wire).
  std::vector<double> selectivities = cfg.smoke
                                          ? std::vector<double>{1.0, 0.25}
                                          : std::vector<double>{1.0, 0.25};
  std::vector<StrategyKind> strategies =
      cfg.smoke ? std::vector<StrategyKind>{StrategyKind::kSP}
                : std::vector<StrategyKind>(std::begin(kAllStrategies),
                                            std::end(kAllStrategies));

  std::vector<SweepRow> sweep;
  for (double theta : thetas) {
    for (uint32_t fanout : fanouts) {
      for (double selectivity : selectivities) {
        WorkloadSpec spec = SweepSpec(cfg, theta, fanout, selectivity,
                                      cfg.sweep_cardinality);
        MJOIN_CHECK(spec.Validate().ok());
        auto db = MakeWorkloadDatabase(spec);
        MJOIN_CHECK(db.ok()) << db.status();
        auto query = MakeWisconsinChainQuery(QueryShape::kRightLinear,
                                             spec.num_relations,
                                             spec.cardinality);
        MJOIN_CHECK(query.ok());
        auto reference = ReferenceSummary(*query, *db);
        MJOIN_CHECK(reference.ok()) << reference.status();

        for (StrategyKind strategy : strategies) {
          auto plan = MakeStrategy(strategy)->Parallelize(
              *query, cfg.processors, TotalCostModel());
          MJOIN_CHECK(plan.ok()) << plan.status();
          ThreadExecutor threads(&*db);
          for (SkewDefenseMode mode :
               {SkewDefenseMode::kOff, SkewDefenseMode::kOn}) {
            SweepRow row;
            row.theta = theta;
            row.fanout = fanout;
            row.selectivity = selectivity;
            row.strategy = strategy;
            row.defense = mode;
            for (int rep = 0; rep < cfg.reps; ++rep) {
              ThreadExecOptions options;
              options.collect_metrics = true;
              options.skew_defense = BenchDefense(mode);
              auto run = threads.Execute(*plan, options);
              MJOIN_CHECK(run.ok()) << run.status();
              if (row.wall == 0 || run->wall_seconds < row.wall) {
                row.wall = run->wall_seconds;
                row.result_rows = run->result.cardinality;
                row.verified = run->result == *reference;
                row.counters = SumCounters(run->stats.per_op);
              }
            }
            std::fprintf(stderr,
                         "sweep theta=%.1f fanout=%u sel=%.2f %s "
                         "defense=%-3s  %8.4fs  %8llu rows  "
                         "bloom_filtered=%llu  %s\n",
                         theta, fanout, selectivity,
                         StrategyName(strategy).c_str(),
                         SkewDefenseModeName(mode), row.wall,
                         static_cast<unsigned long long>(row.result_rows),
                         static_cast<unsigned long long>(
                             row.counters.bloom_filtered),
                         row.verified ? "ok" : "WRONG RESULT");
            sweep.push_back(row);
          }
        }
      }
    }
  }

  // ------------------------------------------------------------------
  // Headline: the adversarial Zipf(1.0) m:n chain on the process
  // backend's shm plane, defense off vs on.
  // ------------------------------------------------------------------
  Headline headline;
  headline.spec = SweepSpec(cfg, /*theta=*/1.0, /*fanout=*/4,
                            /*selectivity=*/0.25, cfg.headline_cardinality);
  headline.spec.num_relations = cfg.relations;
  headline.spec.name = "adversarial-headline";
  {
    auto db = MakeWorkloadDatabase(headline.spec);
    MJOIN_CHECK(db.ok()) << db.status();
    auto query = MakeWisconsinChainQuery(QueryShape::kRightLinear,
                                         headline.spec.num_relations,
                                         headline.spec.cardinality);
    MJOIN_CHECK(query.ok());
    auto reference = ReferenceSummary(*query, *db);
    MJOIN_CHECK(reference.ok()) << reference.status();
    auto plan = MakeStrategy(StrategyKind::kSP)
                    ->Parallelize(*query, cfg.processors, TotalCostModel());
    MJOIN_CHECK(plan.ok()) << plan.status();
    MJOIN_CHECK(!DefendedJoinOps(*plan).empty());

    headline.off = RunHeadlineSide(*db, *plan, *reference, cfg,
                                   SkewDefenseMode::kOff);
    headline.on =
        RunHeadlineSide(*db, *plan, *reference, cfg, SkewDefenseMode::kOn);
  }
  double speedup =
      headline.on.wall > 0 ? headline.off.wall / headline.on.wall : 0;
  std::fprintf(stderr,
               "headline %s\n  defense off: %.4fs  imbalance %.2f  "
               "shm %llu B\n  defense on:  %.4fs  imbalance %.2f  "
               "shm %llu B  (bloom_filtered=%llu hot_keys=%llu)\n"
               "  speedup %.2fx\n",
               headline.spec.ToString().c_str(), headline.off.wall,
               headline.off.imbalance,
               static_cast<unsigned long long>(headline.off.shm_bytes_sent),
               headline.on.wall, headline.on.imbalance,
               static_cast<unsigned long long>(headline.on.shm_bytes_sent),
               static_cast<unsigned long long>(
                   headline.on.counters.bloom_filtered),
               static_cast<unsigned long long>(headline.on.counters.hot_keys),
               speedup);

  // ------------------------------------------------------------------
  // JSON out.
  // ------------------------------------------------------------------
  FILE* f = std::fopen(cfg.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", cfg.out.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"config\": {\"relations\": %d, \"processors\": %u, "
               "\"sweep_relations\": %d, \"sweep_cardinality\": %u, "
               "\"headline_cardinality\": %u, "
               "\"reps\": %d, \"shape\": \"right linear\", \"smoke\": %s},\n"
               "  \"sweep\": [\n",
               cfg.relations, cfg.processors, cfg.sweep_relations,
               cfg.sweep_cardinality, cfg.headline_cardinality, cfg.reps,
               cfg.smoke ? "true" : "false");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepRow& r = sweep[i];
    std::fprintf(
        f,
        "    {\"theta\": %.1f, \"fanout\": %u, \"selectivity\": %.2f, "
        "\"strategy\": \"%s\", \"defense\": \"%s\", \"wall_seconds\": %.6f, "
        "\"result_rows\": %llu, \"verified\": %s, \"hot_keys\": %llu, "
        "\"replicated_rows\": %llu, \"repartitioned_rows\": %llu, "
        "\"bloom_filtered_rows\": %llu}%s\n",
        r.theta, r.fanout, r.selectivity, StrategyName(r.strategy).c_str(),
        SkewDefenseModeName(r.defense), r.wall,
        static_cast<unsigned long long>(r.result_rows),
        r.verified ? "true" : "false",
        static_cast<unsigned long long>(r.counters.hot_keys),
        static_cast<unsigned long long>(r.counters.replicated),
        static_cast<unsigned long long>(r.counters.repartitioned),
        static_cast<unsigned long long>(r.counters.bloom_filtered),
        i + 1 < sweep.size() ? "," : "");
  }
  auto write_side = [f](const char* key, const HeadlineSide& s, bool last) {
    std::string busy;
    for (size_t i = 0; i < s.busy.size(); ++i) {
      char one[32];
      std::snprintf(one, sizeof(one), "%s%.4f", i ? ", " : "", s.busy[i]);
      busy += one;
    }
    std::fprintf(
        f,
        "    \"%s\": {\"wall_seconds\": %.6f, \"busy_imbalance\": %.4f, "
        "\"busy_seconds\": [%s], "
        "\"shm_bytes_sent\": %llu, \"hot_keys\": %llu, "
        "\"replicated_rows\": %llu, \"repartitioned_rows\": %llu, "
        "\"bloom_filtered_rows\": %llu, \"verified\": true}%s\n",
        key, s.wall, s.imbalance, busy.c_str(),
        static_cast<unsigned long long>(s.shm_bytes_sent),
        static_cast<unsigned long long>(s.counters.hot_keys),
        static_cast<unsigned long long>(s.counters.replicated),
        static_cast<unsigned long long>(s.counters.repartitioned),
        static_cast<unsigned long long>(s.counters.bloom_filtered),
        last ? "" : ",");
  };
  std::fprintf(f,
               "  ],\n  \"headline\": {\n    \"workload\": \"%s\", "
               "\"strategy\": \"SP\", \"backend\": \"process/shm\",\n",
               headline.spec.ToString().c_str());
  write_side("defense_off", headline.off, /*last=*/false);
  write_side("defense_on", headline.on, /*last=*/false);
  std::fprintf(f, "    \"speedup\": %.4f\n  }\n}\n", speedup);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", cfg.out.c_str());
  return 0;
}

}  // namespace
}  // namespace mjoin

int main(int argc, char** argv) { return mjoin::Main(argc, argv); }
