// Extension: data skew. The paper's experiments assume "non-skewed data
// partitioning" (§3.5) and leave real-life workloads as future work (§5).
// Here rel1..rel9 get Zipf(theta)-distributed join keys. Hash
// declustering piles the hot keys onto few nodes, so SP's "perfect" load
// balancing and the proportional allocations of SE/RD/FP all degrade —
// even though higher skew actually *shrinks* the intermediate results
// (duplicate keys find fewer distinct partners), i.e. less total work.
#include <cstdio>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "engine/database.h"
#include "engine/reference.h"
#include "engine/sim_executor.h"
#include "plan/catalog.h"
#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"

using namespace mjoin;

int main() {
  constexpr int kRelations = 10;
  constexpr uint32_t kCardinality = 5000;
  constexpr uint32_t kProcs = 40;
  const double thetas[] = {0.0, 0.5, 0.8, 1.0};

  auto query = MakeWisconsinChainQuery(QueryShape::kLeftLinear, kRelations,
                                       kCardinality);
  MJOIN_CHECK(query.ok());

  std::printf(
      "Skew extension: left-linear chain, %u tuples/relation, P=%u.\n"
      "theta = Zipf exponent of the probe-side join keys (0 = iid "
      "uniform).\n'key skew' = excess load of the hottest hash fragment "
      "(lower bound, from column stats).\n\n",
      kCardinality, kProcs);

  TablePrinter table({"theta", "key skew", "SP [s]", "SE [s]", "RD [s]",
                      "FP [s]", "verified"});
  for (double theta : thetas) {
    Database db = MakeSkewedDatabase(kRelations, kCardinality, /*seed=*/37,
                                     theta);
    // Partitioning-skew diagnostic from the statistics catalog.
    auto rel1 = db.Get("rel1");
    MJOIN_CHECK(rel1.ok());
    auto stats = ComputeColumnStats(**rel1, 0);
    MJOIN_CHECK(stats.ok());
    double skew = stats->PartitioningSkewLowerBound(kProcs);

    auto reference = ReferenceSummary(*query, db);
    MJOIN_CHECK(reference.ok()) << reference.status();

    SimExecutor executor(&db);
    std::vector<std::string> row = {FormatDouble(theta, 1),
                                    StrCat(FormatDouble(skew * 100, 0), "%")};
    bool all_verified = true;
    for (StrategyKind kind : kAllStrategies) {
      auto plan = MakeStrategy(kind)->Parallelize(*query, kProcs,
                                                  TotalCostModel());
      MJOIN_CHECK(plan.ok()) << plan.status();
      auto run = executor.Execute(*plan, SimExecOptions());
      MJOIN_CHECK(run.ok()) << run.status();
      all_verified &= run->result == *reference;
      row.push_back(FormatDouble(run->response_seconds, 1));
    }
    row.push_back(all_verified ? "yes" : "NO!");
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nExpected: response times of every strategy grow with theta even "
      "though the total\nwork is unchanged — the hot fragment becomes the "
      "bottleneck (§3.5 'load imbalance\nor skew'). Results stay correct "
      "under skew (verified against the reference).\n");
  return 0;
}
