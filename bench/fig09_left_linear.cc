// Reproduces Figure_9 of the paper: the left_linear query tree.
#include "bench/figure_main.h"

int main() {
  return mjoin::FigureMain(mjoin::QueryShape::kLeftLinear, "Figure_9");
}
