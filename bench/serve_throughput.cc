// Serving-layer throughput suite (results written as JSON, committed as
// BENCH_serve.json): a closed-loop multi-client workload against one
// MjoinServer — every client thread owns a connection and loops
// submit→await over a mixed (strategy × shape) plan deck — measuring
// sustained queries/second and client-observed p50/p99 latency per
// backend configuration:
//
//   serve_thread        warm ThreadExecutor behind the server
//   serve_process_warm  pre-forked warm worker fleet, shm data plane
//   serve_mixed         clients alternate thread/process per query
//   oneshot_process     baseline WITHOUT the server: the same clients
//                       fork a fresh fleet per query (ProcessExecutor) —
//                       the fork+mmap cost the warm fleet amortizes away
//
// Flags: --smoke (tiny run — the CI guard), --out=FILE (default
// BENCH_serve.json), --clients=N (default 4), --seconds=S per config
// (default 3), --card=N (default 1000), --workers=N (default 4).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/stats.h"
#include "engine/database.h"
#include "engine/process_executor.h"
#include "engine/reference.h"
#include "plan/wisconsin_query.h"
#include "serve/client.h"
#include "serve/server.h"
#include "strategy/strategy.h"
#include "xra/text.h"

namespace mjoin {
namespace {

struct Config {
  bool smoke = false;
  std::string out = "BENCH_serve.json";
  int clients = 4;
  double seconds = 3.0;
  int relations = 4;
  uint32_t card = 1000;
  uint32_t procs = 6;
  uint32_t workers = 4;
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The mixed plan deck: every strategy on a spread of shapes, all
/// pre-serialized so the client loop costs nothing but the query itself.
struct Deck {
  std::vector<std::string> plan_texts;
  std::vector<ParallelPlan> plans;  // parsed twins for the one-shot baseline
};

Deck MakeDeck(const Config& cfg) {
  const QueryShape shapes[] = {QueryShape::kLeftLinear,
                               QueryShape::kWideBushy,
                               QueryShape::kRightOrientedBushy};
  Deck deck;
  for (StrategyKind strategy : kAllStrategies) {
    for (QueryShape shape : shapes) {
      auto query = MakeWisconsinChainQuery(shape, cfg.relations, cfg.card);
      MJOIN_CHECK(query.ok());
      auto plan = MakeStrategy(strategy)->Parallelize(*query, cfg.procs,
                                                      TotalCostModel());
      MJOIN_CHECK(plan.ok()) << plan.status();
      deck.plan_texts.push_back(SerializePlan(*plan));
      deck.plans.push_back(*std::move(plan));
    }
  }
  return deck;
}

struct RunResult {
  std::string name;
  uint64_t queries = 0;
  uint64_t failures = 0;
  double elapsed = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double mean_ms = 0;
};

/// Closed loop against the server: each client owns one connection and
/// one slice of the deck, submitting one query at a time until the clock
/// runs out.
RunResult RunServeConfig(const std::string& name, const std::string& socket,
                         const Deck& deck, const Config& cfg,
                         bool use_process, bool mixed) {
  std::vector<std::thread> threads;
  std::vector<PercentileTracker> latencies(cfg.clients);
  std::vector<uint64_t> counts(cfg.clients, 0);
  std::atomic<uint64_t> failures{0};
  const double deadline = Now() + cfg.seconds;
  const uint64_t min_queries = cfg.smoke ? 3 : 10;

  for (int c = 0; c < cfg.clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = ServeClient::Connect(socket);
      if (!client.ok()) {
        ++failures;
        return;
      }
      uint64_t seq = 0;
      while (counts[c] < min_queries || Now() < deadline) {
        SubmitMsg submit;
        submit.client_seq = seq;
        submit.tenant = "bench-" + std::to_string(c);
        const bool process = mixed ? (seq % 2 == 1) : use_process;
        submit.backend =
            process ? ServeBackend::kProcess : ServeBackend::kThread;
        submit.plan_text =
            deck.plan_texts[(c + seq) % deck.plan_texts.size()];
        submit.deadline_ms = 60000;
        const double start = Now();
        if (!client.value()->Submit(submit).ok()) {
          ++failures;
          break;
        }
        auto result = client.value()->Await(60000);
        if (!result.ok() || result->status_code != 0) {
          ++failures;
          break;
        }
        latencies[c].Add((Now() - start) * 1e3);
        ++counts[c];
        ++seq;
      }
    });
  }
  const double t0 = Now();
  for (std::thread& t : threads) t.join();
  const double elapsed = Now() - t0;

  RunResult out;
  out.name = name;
  PercentileTracker merged;
  for (int c = 0; c < cfg.clients; ++c) {
    merged.Merge(latencies[c]);
    out.queries += counts[c];
  }
  out.failures = failures.load();
  out.elapsed = elapsed;
  out.qps = elapsed > 0 ? static_cast<double>(out.queries) / elapsed : 0;
  out.p50_ms = merged.Percentile(50);
  out.p99_ms = merged.Percentile(99);
  double sum = 0;
  for (double v : merged.values()) sum += v;
  out.mean_ms = merged.values().empty() ? 0 : sum / merged.values().size();
  return out;
}

/// The fork-per-query baseline: the same closed loop and deck, but every
/// query pays ProcessExecutor's full fleet fork + shm map + teardown.
RunResult RunOneShotBaseline(const Database& db, const Deck& deck,
                             const Config& cfg) {
  std::vector<std::thread> threads;
  std::vector<PercentileTracker> latencies(cfg.clients);
  std::vector<uint64_t> counts(cfg.clients, 0);
  std::atomic<uint64_t> failures{0};
  const double deadline = Now() + cfg.seconds;
  const uint64_t min_queries = cfg.smoke ? 2 : 5;

  for (int c = 0; c < cfg.clients; ++c) {
    threads.emplace_back([&, c] {
      ProcessExecutor executor(&db);
      uint64_t seq = 0;
      while (counts[c] < min_queries || Now() < deadline) {
        ProcessExecOptions options;
        options.num_workers = cfg.workers;
        const ParallelPlan& plan =
            deck.plans[(c + seq) % deck.plans.size()];
        const double start = Now();
        auto result = executor.Execute(plan, options);
        if (!result.ok()) {
          ++failures;
          break;
        }
        latencies[c].Add((Now() - start) * 1e3);
        ++counts[c];
        ++seq;
      }
    });
  }
  const double t0 = Now();
  for (std::thread& t : threads) t.join();
  const double elapsed = Now() - t0;

  RunResult out;
  out.name = "oneshot_process";
  PercentileTracker merged;
  for (int c = 0; c < cfg.clients; ++c) {
    merged.Merge(latencies[c]);
    out.queries += counts[c];
  }
  out.failures = failures.load();
  out.elapsed = elapsed;
  out.qps = elapsed > 0 ? static_cast<double>(out.queries) / elapsed : 0;
  out.p50_ms = merged.Percentile(50);
  out.p99_ms = merged.Percentile(99);
  double sum = 0;
  for (double v : merged.values()) sum += v;
  out.mean_ms = merged.values().empty() ? 0 : sum / merged.values().size();
  return out;
}

void PrintRow(const RunResult& r) {
  std::printf("%-22s %8llu q  %7.1f q/s  p50 %8.3f ms  p99 %8.3f ms  "
              "mean %8.3f ms  (%llu failures)\n",
              r.name.c_str(), static_cast<unsigned long long>(r.queries),
              r.qps, r.p50_ms, r.p99_ms, r.mean_ms,
              static_cast<unsigned long long>(r.failures));
}

void WriteJson(const Config& cfg, const std::vector<RunResult>& rows) {
  FILE* f = std::fopen(cfg.out.c_str(), "w");
  MJOIN_CHECK(f != nullptr) << "cannot write " << cfg.out;
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"workload\": {\"clients\": %d, \"seconds_per_config\": "
               "%.1f, \"relations\": %d, \"cardinality\": %u, "
               "\"processors\": %u, \"fleet_workers\": %u, \"deck\": "
               "\"4 strategies x 3 shapes\", \"smoke\": %s},\n",
               cfg.clients, cfg.seconds, cfg.relations, cfg.card, cfg.procs,
               cfg.workers, cfg.smoke ? "true" : "false");
  std::fprintf(f, "  \"configs\": {\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const RunResult& r = rows[i];
    std::fprintf(f,
                 "    \"%s\": {\"queries\": %llu, \"failures\": %llu, "
                 "\"elapsed_s\": %.3f, \"qps\": %.2f, \"p50_ms\": %.4f, "
                 "\"p99_ms\": %.4f, \"mean_ms\": %.4f}%s\n",
                 r.name.c_str(), static_cast<unsigned long long>(r.queries),
                 static_cast<unsigned long long>(r.failures), r.elapsed,
                 r.qps, r.p50_ms, r.p99_ms, r.mean_ms,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", cfg.out.c_str());
}

int Run(const Config& cfg) {
  Database db = MakeWisconsinDatabase(cfg.relations, cfg.card, /*seed=*/1995);
  Deck deck = MakeDeck(cfg);
  std::printf("serve_throughput: %d clients, %.1fs per config, deck of %zu "
              "plans, %d relations x %u tuples\n",
              cfg.clients, cfg.seconds, deck.plan_texts.size(),
              cfg.relations, cfg.card);

  MjoinServeOptions options;
  options.socket_path =
      "/tmp/mjoin_serve_bench_" + std::to_string(getpid()) + ".sock";
  options.exec_threads = static_cast<uint32_t>(cfg.clients);
  options.fleet.num_workers = cfg.workers;
  auto server = MjoinServer::Start(&db, options);
  MJOIN_CHECK(server.ok()) << server.status();

  std::vector<RunResult> rows;
  rows.push_back(RunServeConfig("serve_thread", options.socket_path, deck,
                                cfg, /*use_process=*/false, /*mixed=*/false));
  PrintRow(rows.back());
  rows.push_back(RunServeConfig("serve_process_warm", options.socket_path,
                                deck, cfg, /*use_process=*/true,
                                /*mixed=*/false));
  PrintRow(rows.back());
  rows.push_back(RunServeConfig("serve_mixed", options.socket_path, deck,
                                cfg, /*use_process=*/false, /*mixed=*/true));
  PrintRow(rows.back());
  server.value()->Shutdown();

  rows.push_back(RunOneShotBaseline(db, deck, cfg));
  PrintRow(rows.back());

  WriteJson(cfg, rows);

  // The whole point of the warm fleet: its per-query latency must beat
  // fork-per-query. Smoke mode enforces it so CI notices a regression.
  const RunResult& warm = rows[1];
  const RunResult& oneshot = rows[3];
  if (warm.failures != 0 || oneshot.failures != 0) {
    std::fprintf(stderr, "FAIL: benchmark queries failed\n");
    return 1;
  }
  if (warm.p50_ms >= oneshot.p50_ms) {
    std::fprintf(stderr,
                 "FAIL: warm fleet p50 %.3f ms not below one-shot fork p50 "
                 "%.3f ms\n",
                 warm.p50_ms, oneshot.p50_ms);
    return 1;
  }
  std::printf("warm fleet closes %.0f%% of the fork-cost gap at p50\n",
              100.0 * (1.0 - warm.p50_ms / oneshot.p50_ms));
  return 0;
}

}  // namespace
}  // namespace mjoin

int main(int argc, char** argv) {
  mjoin::Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (arg == "--smoke") {
      cfg.smoke = true;
      cfg.seconds = 0.2;
      cfg.card = 400;
    } else if (const char* v = value("--out=")) {
      cfg.out = v;
    } else if (const char* v = value("--clients=")) {
      cfg.clients = std::atoi(v);
    } else if (const char* v = value("--seconds=")) {
      cfg.seconds = std::atof(v);
    } else if (const char* v = value("--card=")) {
      cfg.card = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--workers=")) {
      cfg.workers = static_cast<uint32_t>(std::atoi(v));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  return mjoin::Run(cfg);
}
