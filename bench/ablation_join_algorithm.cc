// Baseline comparison behind the paper's §3 premise: "It is generally
// agreed on that the parallel hash-join is the algorithm of choice
// [SCD89]". We run the SP strategy with the simple hash-join vs the
// sort-merge join across problem sizes — the hash join's linear per-tuple
// work beats sort-merge's n·log n, and the gap widens with size.
#include <cstdio>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "engine/database.h"
#include "engine/reference.h"
#include "engine/sim_executor.h"
#include "plan/wisconsin_query.h"
#include "strategy/sp.h"

using namespace mjoin;

namespace {

double Run(XraOpKind algorithm, const JoinQuery& query, const Database& db,
           uint32_t procs, const ResultSummary& reference) {
  SequentialParallelStrategy strategy(algorithm);
  auto plan = strategy.Parallelize(query, procs, TotalCostModel());
  MJOIN_CHECK(plan.ok()) << plan.status();
  SimExecutor executor(&db);
  auto run = executor.Execute(*plan, SimExecOptions());
  MJOIN_CHECK(run.ok()) << run.status();
  MJOIN_CHECK(run->result == reference) << "wrong result";
  return run->response_seconds;
}

}  // namespace

int main() {
  constexpr int kRelations = 10;
  constexpr uint32_t kProcs = 40;

  std::printf(
      "Join-algorithm baseline ([SCD89]): SP with simple hash-join vs "
      "sort-merge join,\nwide bushy tree, P=%u. Both verified against the "
      "reference.\n\n",
      kProcs);

  TablePrinter table({"tuples/relation", "hash join [s]",
                      "sort-merge [s]", "sort-merge/hash"});
  for (uint32_t cardinality : {2000u, 5000u, 10000u, 20000u, 40000u}) {
    Database db = MakeWisconsinDatabase(kRelations, cardinality, /*seed=*/53);
    auto query = MakeWisconsinChainQuery(QueryShape::kWideBushy, kRelations,
                                         cardinality);
    MJOIN_CHECK(query.ok());
    auto reference = ReferenceSummary(*query, db);
    MJOIN_CHECK(reference.ok());
    double hash = Run(XraOpKind::kSimpleHashJoin, *query, db, kProcs,
                      *reference);
    double smj = Run(XraOpKind::kSortMergeJoin, *query, db, kProcs,
                     *reference);
    table.AddRow({StrCat(cardinality), FormatDouble(hash, 1),
                  FormatDouble(smj, 1), FormatDouble(smj / hash, 2)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nExpected: hash wins everywhere and the ratio grows with the "
      "problem size\n(n log n vs linear per-tuple work) — the premise for "
      "building all four strategies\non hash-joins.\n");
  return 0;
}
