// The original Wisconsin benchmark query classes [BDT83] — the benchmark
// the paper's test data comes from — expressed as parallel XRA plans and
// executed on both backends: selections, selective joins (joinAselB,
// joinABprime), duplicate-eliminating projection, and grouped aggregation.
// Every query's cardinality is verified against a hand computation over
// the generated data, and both backends must agree exactly.
#include <cstdio>
#include <map>
#include <set>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "engine/database.h"
#include "engine/sim_executor.h"
#include "engine/thread_executor.h"
#include "exec/aggregate.h"
#include "storage/wisconsin.h"
#include "xra/plan.h"

using namespace mjoin;

namespace {

constexpr uint32_t kCardA = 10000;       // relation "A"
constexpr uint32_t kCardB = 10000;       // relation "B"
constexpr uint32_t kCardBprime = 1000;   // relation "Bprime"
constexpr uint32_t kProcs = 8;

std::shared_ptr<const Schema> Wisc() {
  return std::make_shared<const Schema>(WisconsinSchema());
}

std::vector<uint32_t> AllProcs() {
  std::vector<uint32_t> procs;
  for (uint32_t p = 0; p < kProcs; ++p) procs.push_back(p);
  return procs;
}

XraOp MakeScan(int id, const std::string& relation, int consumer, int port,
               Routing routing, size_t split_key, int group) {
  XraOp scan;
  scan.id = id;
  scan.kind = XraOpKind::kScan;
  scan.label = StrCat("scan(", relation, ")");
  scan.trace_label = 's';
  scan.relation = relation;
  scan.processors = AllProcs();
  scan.output_schema = Wisc();
  scan.consumer = consumer;
  scan.consumer_port = port;
  scan.trigger_group = group;
  (void)routing;
  (void)split_key;
  return scan;
}

/// SELECT * FROM A WHERE unique2 BETWEEN lo AND hi: scan -> filter.
ParallelPlan SelectionPlan(int32_t lo, int32_t hi) {
  ParallelPlan plan;
  plan.strategy = "wisconsin-suite";
  plan.num_processors = kProcs;

  XraOp scan = MakeScan(0, "A", 1, 0, Routing::kColocated, 0, 0);

  XraOp filter;
  filter.id = 1;
  filter.kind = XraOpKind::kFilter;
  filter.label = StrCat("filter(unique2 in [", lo, ",", hi, "])");
  filter.trace_label = 'f';
  filter.filter = FilterPredicate{kUnique2, CompareOp::kBetween, lo, hi};
  filter.processors = AllProcs();
  filter.input_schema = Wisc();
  filter.output_schema = Wisc();
  filter.inputs[0] = XraInput{0, Routing::kColocated, 0};
  filter.store_result = 0;
  filter.trigger_group = 0;

  plan.ops = {std::move(scan), std::move(filter)};
  plan.groups.push_back(TriggerGroup{{}, {0, 1}});
  plan.num_results = 1;
  plan.final_result = 0;
  return plan;
}

/// SELECT * FROM A, B WHERE A.unique1 = B.unique1 [AND B.unique2 < limit]:
/// scan(A) builds, scan(B) (-> optional filter) probes.
ParallelPlan JoinPlan(const std::string& probe_relation,
                      std::optional<int32_t> probe_sel_limit) {
  ParallelPlan plan;
  plan.strategy = "wisconsin-suite";
  plan.num_processors = kProcs;

  auto spec = MakeNaturalConcatJoinSpec(Wisc(), Wisc(), kUnique1, kUnique1);
  MJOIN_CHECK(spec.ok());

  int join_id = probe_sel_limit.has_value() ? 3 : 2;
  XraOp build_scan = MakeScan(0, "A", join_id, 0, Routing::kColocated, 0, 0);

  XraOp join;
  join.id = join_id;
  join.kind = XraOpKind::kSimpleHashJoin;
  join.label = "join(A,B)";
  join.trace_label = 'j';
  join.join_spec = *spec;
  join.output_schema = spec->output_schema;
  join.processors = AllProcs();
  join.inputs[0] = XraInput{0, Routing::kColocated, 0};
  join.store_result = 0;
  join.trigger_group = 0;

  if (probe_sel_limit.has_value()) {
    // scan(B) -> filter -> (split on unique1) -> join probe.
    XraOp probe_scan = MakeScan(1, probe_relation, 2, 0,
                                Routing::kColocated, 0, 1);
    XraOp filter;
    filter.id = 2;
    filter.kind = XraOpKind::kFilter;
    filter.label = StrCat("filter(unique2<", *probe_sel_limit, ")");
    filter.trace_label = 'f';
    filter.filter =
        FilterPredicate{kUnique2, CompareOp::kLt, *probe_sel_limit, 0};
    filter.processors = AllProcs();
    filter.input_schema = Wisc();
    filter.output_schema = Wisc();
    filter.inputs[0] = XraInput{1, Routing::kColocated, 0};
    filter.consumer = join_id;
    filter.consumer_port = 1;
    filter.trigger_group = 1;
    join.inputs[1] = XraInput{2, Routing::kHashSplit, kUnique1};
    plan.ops = {std::move(build_scan), std::move(probe_scan),
                std::move(filter), std::move(join)};
    plan.groups.push_back(TriggerGroup{{}, {0, 3}});
    plan.groups.push_back(
        TriggerGroup{{{join_id, Milestone::kBuildDone}}, {1, 2}});
  } else {
    // Probe relation streams into the join after the build completes; the
    // scan is colocated with the join (ideal fragmentation on unique1).
    XraOp probe_scan = MakeScan(1, probe_relation, join_id, 1,
                                Routing::kColocated, 0, 1);
    join.inputs[1] = XraInput{1, Routing::kColocated, 0};
    plan.ops = {std::move(build_scan), std::move(probe_scan),
                std::move(join)};
    plan.groups.push_back(TriggerGroup{{}, {0, 2}});
    plan.groups.push_back(
        TriggerGroup{{{join_id, Milestone::kBuildDone}}, {1}});
  }
  plan.num_results = 1;
  plan.final_result = 0;
  return plan;
}

/// SELECT group_col, COUNT(*), SUM/MIN/MAX(value_col) FROM A GROUP BY
/// group_col — also the benchmark's duplicate-eliminating projection when
/// only the group column is kept.
ParallelPlan AggregatePlan(size_t group_col, size_t value_col) {
  ParallelPlan plan;
  plan.strategy = "wisconsin-suite";
  plan.num_processors = kProcs;

  XraOp scan = MakeScan(0, "A", 1, 0, Routing::kHashSplit, group_col, 0);

  XraOp aggregate;
  aggregate.id = 1;
  aggregate.kind = XraOpKind::kAggregate;
  aggregate.label = StrCat("aggregate(group=",
                           WisconsinSchema().column(group_col).name, ")");
  aggregate.trace_label = 'a';
  aggregate.group_column = group_col;
  aggregate.value_column = value_col;
  aggregate.processors = AllProcs();
  aggregate.input_schema = Wisc();
  aggregate.inputs[0] = XraInput{0, Routing::kHashSplit, group_col};
  aggregate.store_result = 0;
  aggregate.trigger_group = 0;
  auto agg_op = AggregateOp::Make(Wisc(), group_col, value_col);
  MJOIN_CHECK(agg_op.ok());
  aggregate.output_schema = (*agg_op)->output_schema();

  // The scan feeds a hash split, so wire it as a streaming producer.
  scan.consumer = 1;
  scan.consumer_port = 0;

  plan.ops = {std::move(scan), std::move(aggregate)};
  plan.groups.push_back(TriggerGroup{{}, {0, 1}});
  plan.num_results = 1;
  plan.final_result = 0;
  return plan;
}

struct SuiteQuery {
  std::string name;
  std::string description;
  ParallelPlan plan;
  uint64_t expected;
};

}  // namespace

int main() {
  // The benchmark's classic instance: A and B with 10,000 tuples, Bprime
  // with the first 1,000 unique1 values.
  Database db;
  Relation a = GenerateWisconsin(kCardA, 1);
  Relation b = GenerateWisconsin(kCardB, 2);
  Relation bprime(WisconsinSchema());
  for (size_t i = 0; i < b.num_tuples(); ++i) {
    if (b.tuple(i).GetInt32(kUnique1) < static_cast<int32_t>(kCardBprime)) {
      bprime.AppendRow(b.tuple(i).data());
    }
  }
  // Hand-computed expectations.
  uint64_t sel1 = 0, sel10 = 0, join_a_sel_b = 0;
  for (size_t i = 0; i < a.num_tuples(); ++i) {
    int32_t u2 = a.tuple(i).GetInt32(kUnique2);
    sel1 += (u2 >= 100 && u2 <= 199) ? 1 : 0;
    sel10 += (u2 >= 1000 && u2 <= 1999) ? 1 : 0;
  }
  for (size_t i = 0; i < b.num_tuples(); ++i) {
    join_a_sel_b += b.tuple(i).GetInt32(kUnique2) < 1000 ? 1 : 0;
  }
  MJOIN_CHECK_OK(db.Add("A", std::move(a)));
  MJOIN_CHECK_OK(db.Add("B", std::move(b)));
  MJOIN_CHECK_OK(db.Add("Bprime", std::move(bprime)));

  std::vector<SuiteQuery> suite;
  suite.push_back({"sel1%", "1% selection on unique2",
                   SelectionPlan(100, 199), sel1});
  suite.push_back({"sel10%", "10% selection on unique2",
                   SelectionPlan(1000, 1999), sel10});
  suite.push_back({"joinABprime", "A join Bprime (1:10 sizes)",
                   JoinPlan("Bprime", std::nullopt), kCardBprime});
  suite.push_back({"joinAselB", "A join (10% of B)",
                   JoinPlan("B", 1000), join_a_sel_b});
  suite.push_back({"proj1%", "duplicate-eliminating projection onePercent",
                   AggregatePlan(kOnePercent, kUnique2), 100});
  suite.push_back({"aggGroup", "MIN/MAX/SUM(unique2) group by twenty",
                   AggregatePlan(kTwenty, kUnique2), 20});

  std::printf(
      "Wisconsin benchmark query classes [BDT83] on the parallel engine "
      "(P=%u, A/B=%u, Bprime=%u):\n\n",
      kProcs, kCardA, kCardBprime);

  SimExecutor sim(&db);
  ThreadExecutor threads(&db);
  TablePrinter table({"query", "description", "rows", "expected",
                      "simulated [s]", "threads agree"});
  bool all_ok = true;
  for (SuiteQuery& q : suite) {
    MJOIN_CHECK_OK(q.plan.Validate());
    auto run = sim.Execute(q.plan, SimExecOptions());
    MJOIN_CHECK(run.ok()) << q.name << ": " << run.status();
    auto wall = threads.Execute(q.plan, ThreadExecOptions());
    MJOIN_CHECK(wall.ok()) << q.name << ": " << wall.status();
    bool agree = run->result == wall->result;
    bool expected_ok = run->result.cardinality == q.expected;
    all_ok &= agree && expected_ok;
    table.AddRow({q.name, q.description, StrCat(run->result.cardinality),
                  StrCat(q.expected),
                  FormatDouble(run->response_seconds, 2),
                  agree ? "yes" : "NO!"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\n%s\n", all_ok
                            ? "All cardinalities match the hand computation "
                              "and both backends agree."
                            : "MISMATCH detected!");
  return all_ok ? 0 : 1;
}
