// Extension: memory pressure. The paper's disk-based discussion: "In a
// disk-based system with a small main memory, which is too small to host
// more than a single join operation in its entirety, it will never pay off
// to use inter-join parallelism, because more than one join would need to
// share the available memory resulting in an increased disk traffic.
// Therefore, such systems should use SP." We sweep the per-node memory
// budget: nodes over budget pay a disk-traffic penalty on their CPU work.
// SP holds one hash table per node at a time; FP holds two tables per
// pipelining join on far fewer nodes per join.
#include <cstdio>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "engine/database.h"
#include "engine/sim_executor.h"
#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"

using namespace mjoin;

namespace {

double Run(StrategyKind kind, const JoinQuery& query, const Database& db,
           uint32_t procs, size_t memory_limit) {
  auto plan = MakeStrategy(kind)->Parallelize(query, procs, TotalCostModel());
  MJOIN_CHECK(plan.ok()) << plan.status();
  SimExecutor executor(&db);
  SimExecOptions options;
  options.costs.memory_per_node_bytes = memory_limit;
  auto run = executor.Execute(*plan, options);
  MJOIN_CHECK(run.ok()) << run.status();
  return run->response_seconds;
}

}  // namespace

int main() {
  constexpr int kRelations = 10;
  constexpr uint32_t kCardinality = 5000;
  constexpr uint32_t kProcs = 40;
  Database db = MakeWisconsinDatabase(kRelations, kCardinality, /*seed=*/31);
  auto query = MakeWisconsinChainQuery(QueryShape::kRightOrientedBushy,
                                       kRelations, kCardinality);
  MJOIN_CHECK(query.ok());

  // One full build table spread over all nodes takes about
  // cardinality * 208 B / P per node; budgets are multiples of that.
  size_t one_table_per_node =
      static_cast<size_t>(kCardinality) * 208 / kProcs;
  struct Budget {
    const char* label;
    size_t bytes;
  };
  const Budget budgets[] = {
      {"unlimited", 0},
      {"8x", 8 * one_table_per_node},
      {"4x", 4 * one_table_per_node},
      {"2x", 2 * one_table_per_node},
  };

  std::printf(
      "Memory-pressure extension: right bushy tree, %u tuples/relation, "
      "P=%u.\nBudget = per-node memory in multiples of one SP build table "
      "per node (~%s);\nnodes over budget pay an 8x disk-traffic penalty "
      "on their work.\n\n",
      kCardinality, kProcs, FormatBytes(one_table_per_node).c_str());

  TablePrinter table({"per-node memory", "SP [s]", "SE [s]", "RD [s]",
                      "FP [s]", "winner"});
  for (const Budget& budget : budgets) {
    std::vector<std::string> row = {budget.label};
    double best = 1e100;
    std::string winner;
    for (StrategyKind kind : kAllStrategies) {
      double seconds = Run(kind, *query, db, kProcs, budget.bytes);
      row.push_back(FormatDouble(seconds, 1));
      if (seconds < best) {
        best = seconds;
        winner = StrategyName(kind);
      }
    }
    row.push_back(winner);
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nExpected: with ample memory the paper's high-parallelism winners "
      "(RD/FP) hold; as the\nbudget shrinks towards one join per node, SP "
      "— which never co-resides hash tables —\ntakes over, reproducing the "
      "paper's disk-based guideline.\n");
  return 0;
}
