// Hot-path throughput suite: measures the threaded backend's tuple
// throughput and batch-buffer allocation traffic for every strategy on
// every query-tree shape, and writes the results as JSON (consumed by
// tools/ci.sh, committed as BENCH_hotpath.json).
//
// Per configuration it runs the query once with metrics on (to count the
// tuples moved and the pool traffic) and `reps` times with metrics off,
// taking the best wall time: tuples/sec = tuples_moved / best_wall.
// "Allocations" are batch buffers heap-allocated by the executor; with
// pooling they stay near the plan's pipeline depth however many batches
// ship, so allocs_per_million_tuples is the steady-state figure of merit.
//
// Flags: --smoke (tiny cardinality, 1 rep — the CI guard),
//        --out=FILE (default BENCH_hotpath.json),
//        --batch=N (default 256).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "engine/database.h"
#include "engine/thread_executor.h"
#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"

namespace mjoin {
namespace {

struct Config {
  bool smoke = false;
  std::string out = "BENCH_hotpath.json";
  uint32_t batch_size = 256;
  int relations = 5;
  uint32_t cardinality = 8000;  // per relation: 5 x 8000 = 40,000 tuples
  uint32_t processors = 8;
  int reps = 3;
};

struct Row {
  std::string strategy;
  std::string shape;
  double best_wall = 0;
  uint64_t tuples_moved = 0;
  double tuples_per_sec = 0;
  uint64_t batches_sent = 0;
  uint64_t buffers_allocated = 0;
  uint64_t buffers_reused = 0;
  double allocs_per_million_tuples = 0;
};

uint64_t TuplesMoved(const ThreadExecStats& stats) {
  uint64_t total = 0;
  for (const ThreadOpStats& op : stats.per_op) total += op.metrics.rows_out;
  return total;
}

Row RunOne(const Database& db, StrategyKind strategy, QueryShape shape,
           const Config& cfg) {
  auto query =
      MakeWisconsinChainQuery(shape, cfg.relations, cfg.cardinality);
  MJOIN_CHECK(query.ok());
  auto plan = MakeStrategy(strategy)->Parallelize(*query, cfg.processors,
                                                  TotalCostModel());
  MJOIN_CHECK(plan.ok()) << plan.status();

  ThreadExecutor executor(&db);
  Row row;
  row.strategy = StrategyName(strategy);
  row.shape = ShapeName(shape);

  // Timing runs first: metrics off, best of reps. These double as pool
  // warmup — the executor's batch pools persist across runs.
  double best = 0;
  for (int r = 0; r < cfg.reps; ++r) {
    ThreadExecOptions options;
    options.batch_size = cfg.batch_size;
    options.collect_metrics = false;
    auto run = executor.Execute(*plan, options);
    MJOIN_CHECK(run.ok()) << run.status();
    if (best == 0 || run->wall_seconds < best) best = run->wall_seconds;
  }
  row.best_wall = best;

  // Counting run last, with warm pools: tuple totals and the
  // steady-state pool traffic of a repeated query.
  {
    ThreadExecOptions options;
    options.batch_size = cfg.batch_size;
    options.collect_metrics = true;
    auto run = executor.Execute(*plan, options);
    MJOIN_CHECK(run.ok()) << run.status();
    row.tuples_moved = TuplesMoved(run->stats);
    row.batches_sent = run->stats.batches_sent;
    row.buffers_allocated = run->stats.batch_buffers_allocated;
    row.buffers_reused = run->stats.batch_buffers_reused;
  }
  row.tuples_per_sec =
      best > 0 ? static_cast<double>(row.tuples_moved) / best : 0;
  row.allocs_per_million_tuples =
      row.tuples_moved > 0 ? static_cast<double>(row.buffers_allocated) * 1e6 /
                                 static_cast<double>(row.tuples_moved)
                           : 0;
  return row;
}

int Main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      cfg.smoke = true;
      cfg.cardinality = 400;
      cfg.reps = 1;
    } else if (arg.rfind("--out=", 0) == 0) {
      cfg.out = arg.substr(6);
    } else if (arg.rfind("--batch=", 0) == 0) {
      cfg.batch_size = static_cast<uint32_t>(std::stoul(arg.substr(8)));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  Database db = MakeWisconsinDatabase(cfg.relations, cfg.cardinality,
                                      /*seed=*/7);
  std::vector<Row> rows;
  for (StrategyKind strategy : kAllStrategies) {
    for (QueryShape shape : kAllShapes) {
      Row row = RunOne(db, strategy, shape, cfg);
      std::fprintf(stderr, "%-3s %-20s %10.0f tuples/s  %6llu alloc  %8llu reused\n",
                   row.strategy.c_str(), row.shape.c_str(),
                   row.tuples_per_sec,
                   static_cast<unsigned long long>(row.buffers_allocated),
                   static_cast<unsigned long long>(row.buffers_reused));
      rows.push_back(std::move(row));
    }
  }

  FILE* f = std::fopen(cfg.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", cfg.out.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"config\": {\"relations\": %d, \"cardinality\": %u, "
               "\"processors\": %u, \"batch_size\": %u, \"reps\": %d, "
               "\"smoke\": %s},\n  \"results\": [\n",
               cfg.relations, cfg.cardinality, cfg.processors, cfg.batch_size,
               cfg.reps, cfg.smoke ? "true" : "false");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"strategy\": \"%s\", \"shape\": \"%s\", "
        "\"best_wall_seconds\": %.6f, \"tuples_moved\": %llu, "
        "\"tuples_per_sec\": %.0f, \"batches_sent\": %llu, "
        "\"buffers_allocated\": %llu, \"buffers_reused\": %llu, "
        "\"allocs_per_million_tuples\": %.2f}%s\n",
        r.strategy.c_str(), r.shape.c_str(), r.best_wall,
        static_cast<unsigned long long>(r.tuples_moved), r.tuples_per_sec,
        static_cast<unsigned long long>(r.batches_sent),
        static_cast<unsigned long long>(r.buffers_allocated),
        static_cast<unsigned long long>(r.buffers_reused),
        r.allocs_per_million_tuples, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", cfg.out.c_str());
  return 0;
}

}  // namespace
}  // namespace mjoin

int main(int argc, char** argv) { return mjoin::Main(argc, argv); }
