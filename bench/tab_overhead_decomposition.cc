// Quantifies the §3.5 tradeoffs: for each strategy, the number of
// operation processes and tuple streams it uses, the scheduler time spent
// on startup, the coordination time spent on stream handshakes, and the
// resulting response time — at a low and a high processor count.
#include <cstdio>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "engine/database.h"
#include "engine/sim_executor.h"
#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"

using namespace mjoin;

int main() {
  constexpr int kRelations = 10;
  constexpr uint32_t kCardinality = 5000;
  const uint32_t kProcs[] = {20, 80};

  Database db = MakeWisconsinDatabase(kRelations, kCardinality, /*seed=*/3);
  auto query = MakeWisconsinChainQuery(QueryShape::kWideBushy, kRelations,
                                       kCardinality);
  MJOIN_CHECK(query.ok()) << query.status();
  SimExecutor executor(&db);
  CostParams costs;

  std::printf(
      "Overhead decomposition (§3.5), wide bushy tree, %u tuples/relation:\n"
      "startup grows with #processes (SP worst, FP best), coordination "
      "with #streams.\n\n",
      kCardinality);

  TablePrinter table({"P", "strategy", "processes", "streams",
                      "startup [s]", "handshake [s]", "response [s]",
                      "join memory"});
  for (uint32_t p : kProcs) {
    for (StrategyKind kind : kAllStrategies) {
      auto plan = MakeStrategy(kind)->Parallelize(*query, p, TotalCostModel());
      MJOIN_CHECK(plan.ok()) << plan.status();
      SimExecOptions options;
      auto run = executor.Execute(*plan, options);
      MJOIN_CHECK(run.ok()) << run.status();
      table.AddRow({StrCat(p), StrategyName(kind),
                    StrCat(run->counters.processes_started),
                    StrCat(run->counters.streams_opened),
                    FormatDouble(costs.ToSeconds(run->counters.startup_ticks), 2),
                    FormatDouble(costs.ToSeconds(run->counters.handshake_ticks), 2),
                    FormatDouble(run->response_seconds, 1),
                    FormatBytes(run->join_memory_bytes)});
    }
    table.AddSeparator();
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nNote the paper's §3.5 ordering: processes SP > SE/RD > FP; FP "
      "needs the most memory\n(two hash tables per pipelining join).\n");
  return 0;
}
