// Measures the wall-clock cost of the thread backend's observability
// layer on a Wisconsin chain query: baseline (metrics and tracing off)
// versus metrics collection versus metrics + trace recording. The
// disabled path must be free — the instrumentation reads no clock when
// both switches are off — so the "metrics off" column is the one that
// guards against observability tax creeping into every run.
//
// Runs standalone with no arguments; MJOIN_FAST=1 shrinks the workload.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/stats.h"
#include "engine/database.h"
#include "engine/thread_executor.h"
#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"

using namespace mjoin;

namespace {

struct Mode {
  const char* name;
  bool collect_metrics;
  bool record_trace;
};

double MedianSeconds(const ThreadExecutor& executor, const ParallelPlan& plan,
                     const Mode& mode, int reps) {
  ThreadExecOptions options;
  options.collect_metrics = mode.collect_metrics;
  options.record_trace = mode.record_trace;
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    auto run = executor.Execute(plan, options);
    if (!run.ok()) {
      std::fprintf(stderr, "FAILED: %s\n", run.status().ToString().c_str());
      std::exit(1);
    }
    samples.push_back(run->wall_seconds);
  }
  // Median, not mean: thread scheduling makes the tail noisy.
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main() {
  bool fast = std::getenv("MJOIN_FAST") != nullptr;
  const uint32_t kCard = fast ? 2000 : 10000;
  const int kRelations = 10;
  // FP needs one processor per operation; 10 is the minimum for this plan.
  const uint32_t kProcs = 10;
  const int kReps = fast ? 5 : 9;

  auto query =
      MakeWisconsinChainQuery(QueryShape::kWideBushy, kRelations, kCard);
  if (!query.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", query.status().ToString().c_str());
    return 1;
  }
  auto plan = MakeStrategy(StrategyKind::kFP)
                  ->Parallelize(*query, kProcs, TotalCostModel());
  if (!plan.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  Database db = MakeWisconsinDatabase(kRelations, kCard, /*seed=*/1995);
  ThreadExecutor executor(&db);

  const Mode modes[] = {
      {"observability off", false, false},
      {"metrics", true, false},
      {"metrics + trace", true, true},
  };

  std::printf(
      "trace-overhead micro benchmark: FP, %d-relation wide-bushy chain, "
      "%u tuples/relation, %u threads, median of %d runs\n\n",
      kRelations, kCard, kProcs, kReps);

  // Warm up once (page-in the data, spin up the allocator arenas).
  MedianSeconds(executor, *plan, modes[0], 1);

  double baseline = 0;
  for (const Mode& mode : modes) {
    double median = MedianSeconds(executor, *plan, mode, kReps);
    if (baseline == 0) baseline = median;
    double overhead = (median / baseline - 1.0) * 100.0;
    std::printf("%-20s %8.3f ms   %+6.2f%% vs off\n", mode.name,
                median * 1e3, overhead);
  }
  std::printf(
      "\nthe disabled path reads no clock per batch; its delta from run to\n"
      "run is scheduler noise (re-run to confirm it straddles zero)\n");
  return 0;
}
