// Network-layer throughput suite for the process backend, in three tiers
// (results written as JSON, committed as BENCH_net.json):
//
//   codec:  AppendBatchWire / ReadBatchWire bytes-per-second on a
//           Wisconsin-row batch, per batch size — the pure serialization
//           cost every remote delivery pays.
//   socket: whole frames pumped through a FrameChannel pair over a real
//           AF_UNIX socketpair, single-threaded (queue/flush one end, read
//           the other), so the figure includes framing, syscalls, and
//           reassembly but no scheduler noise.
//   query:  FP left-linear end to end — thread backend vs the process
//           backend over its two data planes (all-socket and shared-memory
//           rings) at the same batch size: what shared-nothing isolation
//           costs on a real plan, and how much of it the shm plane buys
//           back, with the wire traffic each run generated.
//
// Flags: --smoke (tiny sweep, 1 rep — the CI guard),
//        --out=FILE (default BENCH_net.json),
//        --workers=N (process backend; default 0 = one per processor).
#include <sys/socket.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "engine/database.h"
#include "engine/process_executor.h"
#include "engine/thread_executor.h"
#include "net/channel.h"
#include "net/wire.h"
#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"

namespace mjoin {
namespace {

struct Config {
  bool smoke = false;
  std::string out = "BENCH_net.json";
  uint32_t batch_size = 256;
  int relations = 5;
  uint32_t cardinality = 8000;
  uint32_t processors = 8;
  uint32_t workers = 0;  // 0 = one per processor
  int reps = 3;
  uint64_t codec_bytes = 256ull << 20;   // bytes to push through the codec
  uint64_t socket_bytes = 128ull << 20;  // bytes to push through the socket
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ParallelPlan MakePlan(const Config& cfg) {
  auto query = MakeWisconsinChainQuery(QueryShape::kLeftLinear,
                                       cfg.relations, cfg.cardinality);
  MJOIN_CHECK(query.ok());
  auto plan = MakeStrategy(StrategyKind::kFP)
                  ->Parallelize(*query, cfg.processors, TotalCostModel());
  MJOIN_CHECK(plan.ok()) << plan.status();
  return *std::move(plan);
}

TupleBatch MakeBatch(const SchemaRegistry& registry, uint32_t schema_id,
                     size_t rows) {
  TupleBatch batch(registry.Get(schema_id));
  const uint32_t tuple_size = batch.schema().tuple_size();
  std::vector<std::byte> row(tuple_size);
  for (size_t r = 0; r < rows; ++r) {
    for (uint32_t b = 0; b < tuple_size; ++b) {
      row[b] = static_cast<std::byte>((r * 131 + b * 7) & 0xff);
    }
    batch.AppendRow(row.data());
  }
  return batch;
}

struct CodecRow {
  size_t rows_per_batch = 0;
  size_t wire_bytes_per_batch = 0;
  double serialize_bytes_per_sec = 0;
  double deserialize_bytes_per_sec = 0;
};

CodecRow BenchCodec(const ParallelPlan& plan, size_t rows_per_batch,
                    const Config& cfg) {
  SchemaRegistry registry(plan);
  TupleBatch batch = MakeBatch(registry, 0, rows_per_batch);

  CodecRow row;
  row.rows_per_batch = rows_per_batch;
  row.wire_bytes_per_batch =
      BatchWireSize(batch.schema().tuple_size(), rows_per_batch);
  const uint64_t iters =
      std::max<uint64_t>(1, cfg.codec_bytes / row.wire_bytes_per_batch);

  std::vector<std::byte> wire;
  double best_ser = 0;
  for (int rep = 0; rep < cfg.reps; ++rep) {
    double start = Now();
    for (uint64_t i = 0; i < iters; ++i) {
      wire.clear();
      AppendBatchWire(batch, /*schema_id=*/0, &wire);
    }
    double elapsed = Now() - start;
    if (best_ser == 0 || elapsed < best_ser) best_ser = elapsed;
  }
  row.serialize_bytes_per_sec =
      static_cast<double>(iters * row.wire_bytes_per_batch) / best_ser;

  double best_de = 0;
  TupleBatch decoded(registry.Get(0));
  for (int rep = 0; rep < cfg.reps; ++rep) {
    double start = Now();
    for (uint64_t i = 0; i < iters; ++i) {
      WireReader reader(wire);
      MJOIN_CHECK(ReadBatchWire(&reader, registry, &decoded).ok());
    }
    double elapsed = Now() - start;
    if (best_de == 0 || elapsed < best_de) best_de = elapsed;
  }
  row.deserialize_bytes_per_sec =
      static_cast<double>(iters * row.wire_bytes_per_batch) / best_de;
  return row;
}

struct SocketRow {
  size_t frame_bytes = 0;
  uint64_t frames = 0;
  double bytes_per_sec = 0;
  double frames_per_sec = 0;
};

SocketRow BenchSocket(size_t payload_bytes, const Config& cfg) {
  SocketRow row;
  row.frame_bytes = payload_bytes + 5;  // + length + type
  row.frames = std::max<uint64_t>(1, cfg.socket_bytes / row.frame_bytes);

  std::vector<std::byte> payload(payload_bytes, std::byte{0x5a});
  double best = 0;
  for (int rep = 0; rep < cfg.reps; ++rep) {
    int sv[2];
    MJOIN_CHECK(socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0);
    MJOIN_CHECK(SetNonBlocking(sv[0]).ok());
    MJOIN_CHECK(SetNonBlocking(sv[1]).ok());
    FrameChannel tx(sv[0], "bench tx");
    FrameChannel rx(sv[1], "bench rx");

    uint64_t sent = 0, received = 0;
    Frame frame;
    double start = Now();
    while (received < row.frames) {
      // Keep roughly a megabyte in flight, then drain the other end —
      // the coordinator's flush/read cadence in miniature.
      while (sent < row.frames && tx.pending_output_bytes() < (1u << 20)) {
        tx.QueueFrame(FrameType::kData, payload);
        ++sent;
      }
      MJOIN_CHECK(tx.Flush().ok());
      bool closed = false;
      MJOIN_CHECK(rx.ReadAvailable(&closed).ok());
      while (rx.NextFrame(&frame)) ++received;
    }
    double elapsed = Now() - start;
    if (best == 0 || elapsed < best) best = elapsed;
  }
  row.bytes_per_sec =
      static_cast<double>(row.frames * row.frame_bytes) / best;
  row.frames_per_sec = static_cast<double>(row.frames) / best;
  return row;
}

/// One process-backend configuration's best-of-reps run.
struct ProcessRow {
  double wall = 0;
  uint32_t workers = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t data_frames_routed = 0;
  uint64_t local_deliveries = 0;
  double serialize_seconds = 0;
  double deserialize_seconds = 0;
  uint32_t shm_rings = 0;
  uint64_t shm_records_sent = 0;
  uint64_t shm_bytes_sent = 0;
  uint64_t ring_full_stalls = 0;
};

struct QueryRow {
  double thread_wall = 0;
  ProcessRow socket_plane;  // use_shm_data_plane = false
  ProcessRow shm_plane;     // use_shm_data_plane = true
};

ProcessRow BenchProcess(const Database& db, const ParallelPlan& plan,
                        const Config& cfg, bool use_shm) {
  ProcessRow row;
  ProcessExecutor processes(&db);
  for (int rep = 0; rep < cfg.reps; ++rep) {
    ProcessExecOptions options;
    options.exec.batch_size = cfg.batch_size;
    options.exec.collect_metrics = false;
    options.num_workers = cfg.workers;
    options.use_shm_data_plane = use_shm;
    auto run = processes.Execute(plan, options);
    MJOIN_CHECK(run.ok()) << run.status();
    if (row.wall == 0 || run->exec.wall_seconds < row.wall) {
      row.wall = run->exec.wall_seconds;
    }
    row.workers = run->net.num_workers;
    row.bytes_sent = run->net.bytes_sent;
    row.bytes_received = run->net.bytes_received;
    row.data_frames_routed = run->net.data_frames_routed;
    row.local_deliveries = run->net.local_deliveries;
    row.serialize_seconds = run->net.serialize_seconds;
    row.deserialize_seconds = run->net.deserialize_seconds;
    row.shm_rings = run->net.shm_rings;
    row.shm_records_sent = run->net.shm_records_sent;
    row.shm_bytes_sent = run->net.shm_bytes_sent;
    row.ring_full_stalls = run->net.ring_full_stalls;
  }
  return row;
}

QueryRow BenchQuery(const Database& db, const ParallelPlan& plan,
                    const Config& cfg) {
  QueryRow row;

  ThreadExecutor threads(&db);
  for (int rep = 0; rep < cfg.reps; ++rep) {
    ThreadExecOptions options;
    options.batch_size = cfg.batch_size;
    options.collect_metrics = false;
    auto run = threads.Execute(plan, options);
    MJOIN_CHECK(run.ok()) << run.status();
    if (row.thread_wall == 0 || run->wall_seconds < row.thread_wall) {
      row.thread_wall = run->wall_seconds;
    }
  }

  row.socket_plane = BenchProcess(db, plan, cfg, /*use_shm=*/false);
  row.shm_plane = BenchProcess(db, plan, cfg, /*use_shm=*/true);
  return row;
}

int Main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      cfg.smoke = true;
      cfg.cardinality = 400;
      cfg.reps = 1;
      cfg.codec_bytes = 8ull << 20;
      cfg.socket_bytes = 8ull << 20;
    } else if (arg.rfind("--out=", 0) == 0) {
      cfg.out = arg.substr(6);
    } else if (arg.rfind("--workers=", 0) == 0) {
      cfg.workers = static_cast<uint32_t>(std::stoul(arg.substr(10)));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  Database db = MakeWisconsinDatabase(cfg.relations, cfg.cardinality,
                                      /*seed=*/7);
  ParallelPlan plan = MakePlan(cfg);

  std::vector<CodecRow> codec;
  for (size_t rows : {64u, 256u, 4096u}) {
    CodecRow r = BenchCodec(plan, rows, cfg);
    std::fprintf(stderr,
                 "codec  %5zu rows/batch  ser %7.0f MB/s  deser %7.0f MB/s\n",
                 r.rows_per_batch, r.serialize_bytes_per_sec / 1e6,
                 r.deserialize_bytes_per_sec / 1e6);
    codec.push_back(r);
  }

  std::vector<SocketRow> socket;
  for (size_t payload : {size_t{256}, size_t{4096}, size_t{65536}}) {
    SocketRow r = BenchSocket(payload, cfg);
    std::fprintf(stderr,
                 "socket %6zu B frames    %7.0f MB/s  %9.0f frames/s\n",
                 r.frame_bytes, r.bytes_per_sec / 1e6, r.frames_per_sec);
    socket.push_back(r);
  }

  QueryRow query = BenchQuery(db, plan, cfg);
  std::fprintf(stderr,
               "query  thread %.4fs  process/socket %.4fs  process/shm %.4fs "
               "(%u workers, %u rings, %llu shm records, %llu ring stalls)\n",
               query.thread_wall, query.socket_plane.wall, query.shm_plane.wall,
               query.shm_plane.workers, query.shm_plane.shm_rings,
               static_cast<unsigned long long>(query.shm_plane.shm_records_sent),
               static_cast<unsigned long long>(query.shm_plane.ring_full_stalls));

  FILE* f = std::fopen(cfg.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", cfg.out.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"config\": {\"relations\": %d, \"cardinality\": %u, "
               "\"processors\": %u, \"batch_size\": %u, \"reps\": %d, "
               "\"smoke\": %s},\n  \"codec\": [\n",
               cfg.relations, cfg.cardinality, cfg.processors, cfg.batch_size,
               cfg.reps, cfg.smoke ? "true" : "false");
  for (size_t i = 0; i < codec.size(); ++i) {
    const CodecRow& r = codec[i];
    std::fprintf(f,
                 "    {\"rows_per_batch\": %zu, \"wire_bytes\": %zu, "
                 "\"serialize_bytes_per_sec\": %.0f, "
                 "\"deserialize_bytes_per_sec\": %.0f}%s\n",
                 r.rows_per_batch, r.wire_bytes_per_batch,
                 r.serialize_bytes_per_sec, r.deserialize_bytes_per_sec,
                 i + 1 < codec.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"socket\": [\n");
  for (size_t i = 0; i < socket.size(); ++i) {
    const SocketRow& r = socket[i];
    std::fprintf(f,
                 "    {\"frame_bytes\": %zu, \"frames\": %llu, "
                 "\"bytes_per_sec\": %.0f, \"frames_per_sec\": %.0f}%s\n",
                 r.frame_bytes, static_cast<unsigned long long>(r.frames),
                 r.bytes_per_sec, r.frames_per_sec,
                 i + 1 < socket.size() ? "," : "");
  }
  std::fprintf(
      f,
      "  ],\n  \"query\": {\"strategy\": \"FP\", \"shape\": \"left linear\", "
      "\"thread_wall_seconds\": %.6f,\n",
      query.thread_wall);
  auto write_plane = [f](const char* key, const ProcessRow& r, bool last) {
    std::fprintf(
        f,
        "    \"%s\": {\"wall_seconds\": %.6f, \"workers\": %u, "
        "\"bytes_sent\": %llu, \"bytes_received\": %llu, "
        "\"data_frames_routed\": %llu, \"local_deliveries\": %llu, "
        "\"serialize_seconds\": %.6f, \"deserialize_seconds\": %.6f, "
        "\"shm_rings\": %u, \"shm_records_sent\": %llu, "
        "\"shm_bytes_sent\": %llu, \"ring_full_stalls\": %llu}%s\n",
        key, r.wall, r.workers,
        static_cast<unsigned long long>(r.bytes_sent),
        static_cast<unsigned long long>(r.bytes_received),
        static_cast<unsigned long long>(r.data_frames_routed),
        static_cast<unsigned long long>(r.local_deliveries),
        r.serialize_seconds, r.deserialize_seconds, r.shm_rings,
        static_cast<unsigned long long>(r.shm_records_sent),
        static_cast<unsigned long long>(r.shm_bytes_sent),
        static_cast<unsigned long long>(r.ring_full_stalls),
        last ? "" : ",");
  };
  write_plane("process_socket", query.socket_plane, /*last=*/false);
  write_plane("process_shm", query.shm_plane, /*last=*/true);
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", cfg.out.c_str());
  return 0;
}

}  // namespace
}  // namespace mjoin

int main(int argc, char** argv) { return mjoin::Main(argc, argv); }
