#ifndef MJOIN_BENCH_FIGURE_MAIN_H_
#define MJOIN_BENCH_FIGURE_MAIN_H_

#include <cstdio>
#include <cstdlib>

#include "engine/experiment.h"

namespace mjoin {

/// Shared driver for the Figure 9-13 benchmarks: runs the paper's sweep
/// (4 strategies x {20..80} processors x {5K, 40K} tuples/relation, 10
/// Wisconsin relations) for one query shape and prints the two series the
/// figure plots. Every run's result is verified against the
/// single-threaded reference executor.
///
/// Set MJOIN_FAST=1 to shrink the sweep (2K/8K tuples, three processor
/// counts) for quick smoke runs.
inline int FigureMain(QueryShape shape, const char* figure_name) {
  CostParams costs;
  bool fast = std::getenv("MJOIN_FAST") != nullptr;
  uint32_t small_card = fast ? 2000 : 5000;
  uint32_t large_card = fast ? 8000 : 40000;

  std::printf("%s: response time vs. number of processors, %s query tree\n",
              figure_name, ShapeName(shape).c_str());
  std::printf("(simulated PRISMA/DB-like machine; %s)\n\n",
              costs.ToString().c_str());

  auto out = RunPaperFigure(shape, costs, small_card, large_card,
                            /*verify=*/true);
  if (!out.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", out.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", out->text.c_str());
  return 0;
}

}  // namespace mjoin

#endif  // MJOIN_BENCH_FIGURE_MAIN_H_
