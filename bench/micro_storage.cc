// Microbenchmarks of the storage substrate: Wisconsin data generation,
// hash declustering (the engine's initial fragmentation), and the
// order-insensitive result digest used for cross-strategy verification.
#include <benchmark/benchmark.h>

#include "engine/result.h"
#include "storage/partitioner.h"
#include "storage/wisconsin.h"

namespace mjoin {
namespace {

void BM_GenerateWisconsin(benchmark::State& state) {
  auto n = static_cast<uint32_t>(state.range(0));
  uint64_t seed = 1;
  for (auto _ : state) {
    Relation rel = GenerateWisconsin(n, seed++);
    benchmark::DoNotOptimize(rel.num_tuples());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetBytesProcessed(state.iterations() * n * 208);
}
BENCHMARK(BM_GenerateWisconsin)->Arg(5000)->Arg(40000);

void BM_HashPartition(benchmark::State& state) {
  auto n = static_cast<uint32_t>(state.range(0));
  auto fragments = static_cast<uint32_t>(state.range(1));
  Relation rel = GenerateWisconsin(n, 7);
  for (auto _ : state) {
    auto parts = HashPartition(rel, kUnique1, fragments);
    MJOIN_CHECK(parts.ok());
    benchmark::DoNotOptimize(parts->size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HashPartition)
    ->Args({40000, 8})
    ->Args({40000, 80})
    ->Args({5000, 80});

void BM_ResultSummary(benchmark::State& state) {
  auto n = static_cast<uint32_t>(state.range(0));
  Relation rel = GenerateWisconsin(n, 9);
  for (auto _ : state) {
    ResultSummary summary = SummarizeRelation(rel);
    benchmark::DoNotOptimize(summary.checksum);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetBytesProcessed(state.iterations() * n * 208);
}
BENCHMARK(BM_ResultSummary)->Arg(5000)->Arg(40000);

}  // namespace
}  // namespace mjoin

BENCHMARK_MAIN();
