// Reproduces Figure_11 of the paper: the wide_bushy query tree.
#include "bench/figure_main.h"

int main() {
  return mjoin::FigureMain(mjoin::QueryShape::kWideBushy, "Figure_11");
}
