// Reproduces the §2.3.1 result ([WFA92]) that motivates the paper's
// tradeoff analysis: speedup of a single-join query saturates, the optimal
// number of processors grows with the operand size (roughly like its
// square root), and beyond it the startup/coordination overhead dominates.
#include <cmath>
#include <cstdio>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "engine/database.h"
#include "engine/sim_executor.h"
#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"

using namespace mjoin;

int main() {
  const uint32_t cardinalities[] = {1000, 4000, 16000, 64000};
  const uint32_t processors[] = {1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 80};

  std::printf(
      "Single-join query (2 Wisconsin relations): response time [s] vs "
      "processors.\nOptimal processor count should grow ~ sqrt(operand "
      "size) [WFA92].\n\n");

  std::vector<std::string> headers = {"processors"};
  for (uint32_t card : cardinalities) headers.push_back(StrCat(card, " tup"));
  TablePrinter table(headers);

  std::vector<uint32_t> best_p(std::size(cardinalities), 0);
  std::vector<double> best_s(std::size(cardinalities), 1e100);

  // One row per processor count; sweep sizes in columns.
  std::vector<std::vector<double>> cells(
      std::size(processors), std::vector<double>(std::size(cardinalities)));
  for (size_t ci = 0; ci < std::size(cardinalities); ++ci) {
    uint32_t card = cardinalities[ci];
    Database db = MakeWisconsinDatabase(2, card, /*seed=*/7);
    auto query = MakeWisconsinChainQuery(QueryShape::kLeftLinear, 2, card);
    MJOIN_CHECK(query.ok()) << query.status();
    SimExecutor executor(&db);
    auto strategy = MakeStrategy(StrategyKind::kSP);
    for (size_t pi = 0; pi < std::size(processors); ++pi) {
      auto plan = strategy->Parallelize(*query, processors[pi],
                                        TotalCostModel());
      MJOIN_CHECK(plan.ok()) << plan.status();
      auto run = executor.Execute(*plan, SimExecOptions());
      MJOIN_CHECK(run.ok()) << run.status();
      cells[pi][ci] = run->response_seconds;
      if (run->response_seconds < best_s[ci]) {
        best_s[ci] = run->response_seconds;
        best_p[ci] = processors[pi];
      }
    }
  }
  for (size_t pi = 0; pi < std::size(processors); ++pi) {
    std::vector<std::string> row = {StrCat(processors[pi])};
    for (size_t ci = 0; ci < std::size(cardinalities); ++ci) {
      row.push_back(FormatDouble(cells[pi][ci], 2));
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());

  TablePrinter summary(
      {"operand size", "optimal P", "best [s]", "optimal P / sqrt(size)"});
  for (size_t ci = 0; ci < std::size(cardinalities); ++ci) {
    summary.AddRow({StrCat(cardinalities[ci]), StrCat(best_p[ci]),
                    FormatDouble(best_s[ci], 2),
                    FormatDouble(best_p[ci] /
                                     std::sqrt(double(cardinalities[ci])),
                                 3)});
  }
  std::printf("%s", summary.ToString().c_str());
  std::printf(
      "\nThe last column should stay roughly constant: the optimal degree "
      "of parallelism\nis proportional to the square root of the operand "
      "size.\n");
  return 0;
}
