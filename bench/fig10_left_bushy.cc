// Reproduces Figure_10 of the paper: the left_bushy query tree.
#include "bench/figure_main.h"

int main() {
  return mjoin::FigureMain(mjoin::QueryShape::kLeftOrientedBushy, "Figure_10");
}
