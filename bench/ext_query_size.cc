// Extension: scaling in the number of joins. The paper fixes the query at
// ten relations and motivates the problem with "complex queries that may
// contain larger numbers of joins"; here we vary the join count directly
// (wide bushy trees over 4..16 relations, fixed machine) to see how each
// strategy's overheads scale with query complexity.
#include <cstdio>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "engine/database.h"
#include "engine/reference.h"
#include "engine/sim_executor.h"
#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"

using namespace mjoin;

int main() {
  constexpr uint32_t kCardinality = 5000;
  constexpr uint32_t kProcs = 64;

  std::printf(
      "Query-size extension: wide bushy trees over N relations, "
      "%u tuples/relation, P=%u.\nEvery run verified against the "
      "reference.\n\n",
      kCardinality, kProcs);

  TablePrinter table({"relations", "joins", "SP [s]", "SE [s]", "RD [s]",
                      "FP [s]", "best"});
  for (int relations : {4, 6, 8, 10, 12, 16}) {
    Database db = MakeWisconsinDatabase(relations, kCardinality, /*seed=*/59);
    auto query = MakeWisconsinChainQuery(QueryShape::kWideBushy, relations,
                                         kCardinality);
    MJOIN_CHECK(query.ok());
    auto reference = ReferenceSummary(*query, db);
    MJOIN_CHECK(reference.ok());
    SimExecutor executor(&db);

    std::vector<std::string> row = {StrCat(relations),
                                    StrCat(relations - 1)};
    double best = 1e100;
    std::string winner = "-";
    for (StrategyKind kind : kAllStrategies) {
      auto plan = MakeStrategy(kind)->Parallelize(*query, kProcs,
                                                  TotalCostModel());
      MJOIN_CHECK(plan.ok()) << plan.status();
      auto run = executor.Execute(*plan, SimExecOptions());
      MJOIN_CHECK(run.ok()) << run.status();
      MJOIN_CHECK(run->result == *reference);
      row.push_back(FormatDouble(run->response_seconds, 1));
      if (run->response_seconds < best) {
        best = run->response_seconds;
        winner = StrategyName(kind);
      }
    }
    row.push_back(winner);
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nExpected: SP's cost grows fastest (startup and refragmentation "
      "per join); the\ninter-operator strategies absorb extra joins far "
      "more gracefully, and FP's edge\nwidens with query complexity — the "
      "paper's motivation for strategies beyond SP.\n");
  return 0;
}
