// Microbenchmarks of the planning layer: phase-1 optimization (DP vs
// greedy as the query grows), phase-2 strategy planning, processor
// allocation, and right-deep segmentation. Planning must stay cheap
// relative to execution — the paper's third argument for two-phase
// optimization is "a reasonable way to cut down on the optimization time".
#include <benchmark/benchmark.h>

#include "opt/optimizer.h"
#include "plan/allocation.h"
#include "plan/segments.h"
#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"

namespace mjoin {
namespace {

void BM_OptimizeDp(benchmark::State& state) {
  auto n = static_cast<int>(state.range(0));
  JoinGraph graph = JoinGraph::RegularChain(n, 5000);
  TotalCostModel model;
  for (auto _ : state) {
    auto tree = OptimizeDp(graph, model, {});
    MJOIN_CHECK(tree.ok());
    benchmark::DoNotOptimize(tree->num_joins());
  }
}
BENCHMARK(BM_OptimizeDp)->Arg(6)->Arg(10)->Arg(12)->Arg(14);

void BM_OptimizeGreedy(benchmark::State& state) {
  auto n = static_cast<int>(state.range(0));
  JoinGraph graph = JoinGraph::RegularChain(n, 5000);
  TotalCostModel model;
  for (auto _ : state) {
    auto tree = OptimizeGreedy(graph, model);
    MJOIN_CHECK(tree.ok());
    benchmark::DoNotOptimize(tree->num_joins());
  }
}
BENCHMARK(BM_OptimizeGreedy)->Arg(10)->Arg(20)->Arg(40);

void BM_StrategyPlanning(benchmark::State& state) {
  auto kind = static_cast<StrategyKind>(state.range(0));
  auto query = MakeWisconsinChainQuery(QueryShape::kRightOrientedBushy, 10,
                                       5000);
  MJOIN_CHECK(query.ok());
  auto strategy = MakeStrategy(kind);
  for (auto _ : state) {
    auto plan = strategy->Parallelize(*query, 80, TotalCostModel());
    MJOIN_CHECK(plan.ok());
    benchmark::DoNotOptimize(plan->CountProcesses());
  }
  state.SetLabel(StrategyName(kind));
}
BENCHMARK(BM_StrategyPlanning)
    ->Arg(static_cast<int>(StrategyKind::kSP))
    ->Arg(static_cast<int>(StrategyKind::kSE))
    ->Arg(static_cast<int>(StrategyKind::kRD))
    ->Arg(static_cast<int>(StrategyKind::kFP));

void BM_ProportionalAllocation(benchmark::State& state) {
  std::vector<double> work;
  for (int i = 0; i < 32; ++i) work.push_back(1.0 + i % 7);
  for (auto _ : state) {
    auto counts = ProportionalAllocation(work, 80);
    MJOIN_CHECK(counts.ok());
    benchmark::DoNotOptimize(counts->size());
  }
}
BENCHMARK(BM_ProportionalAllocation);

void BM_Segmentation(benchmark::State& state) {
  auto tree = BuildShape(QueryShape::kRightOrientedBushy,
                         WisconsinRelationNames(16), 5000);
  MJOIN_CHECK(tree.ok());
  TotalCostModel().Annotate(&*tree);
  for (auto _ : state) {
    SegmentedTree segmented = SegmentedTree::Build(*tree);
    benchmark::DoNotOptimize(segmented.segments().size());
  }
}
BENCHMARK(BM_Segmentation);

}  // namespace
}  // namespace mjoin

BENCHMARK_MAIN();
