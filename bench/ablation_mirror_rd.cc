// Ablation for the paper's §5 remark: "it is possible without cost penalty
// to mirror (parts of) a query to make it more right-oriented, so that in
// practice RD is expected to work quite well." We run RD on the
// left-oriented bushy tree as-is and after RightOrient(), and compare with
// RD on the natively right-oriented tree.
#include <cstdio>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "engine/database.h"
#include "engine/reference.h"
#include "engine/sim_executor.h"
#include "plan/transform.h"
#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"

using namespace mjoin;

namespace {

double RunRd(const JoinQuery& query, const Database& db, uint32_t procs) {
  auto plan = MakeStrategy(StrategyKind::kRD)
                  ->Parallelize(query, procs, TotalCostModel());
  MJOIN_CHECK(plan.ok()) << plan.status();
  SimExecutor executor(&db);
  auto run = executor.Execute(*plan, SimExecOptions());
  MJOIN_CHECK(run.ok()) << run.status();
  return run->response_seconds;
}

}  // namespace

int main() {
  constexpr int kRelations = 10;
  constexpr uint32_t kCardinality = 5000;
  Database db = MakeWisconsinDatabase(kRelations, kCardinality, /*seed=*/11);

  auto left = MakeWisconsinChainQuery(QueryShape::kLeftOrientedBushy,
                                      kRelations, kCardinality);
  auto right = MakeWisconsinChainQuery(QueryShape::kRightOrientedBushy,
                                       kRelations, kCardinality);
  MJOIN_CHECK(left.ok() && right.ok());

  // Mirrored variant: the left-oriented tree right-oriented in place.
  auto mirrored = MakeWisconsinChainQuery(QueryShape::kLeftOrientedBushy,
                                          kRelations, kCardinality);
  MJOIN_CHECK(mirrored.ok());
  int swapped = RightOrient(&mirrored->tree);

  std::printf(
      "RD on a left-oriented bushy tree, before/after mirroring "
      "(RightOrient swapped %d joins),\nvs RD on the natively "
      "right-oriented tree. %u tuples/relation.\n\n",
      swapped, kCardinality);

  TablePrinter table({"P", "RD left-oriented [s]", "RD mirrored [s]",
                      "RD right-oriented [s]"});
  for (uint32_t p : {20u, 40u, 60u, 80u}) {
    table.AddRow({StrCat(p), FormatDouble(RunRd(*left, db, p), 1),
                  FormatDouble(RunRd(*mirrored, db, p), 1),
                  FormatDouble(RunRd(*right, db, p), 1)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nExpected: mirroring recovers (most of) the right-oriented "
      "performance at no cost.\n");
  return 0;
}
