// Ablation of the stream batch size (pipelining granularity): small
// batches reduce pipeline delay but pay more per-batch overhead; large
// batches amortize overhead but delay downstream operators. FP, which
// lives off pipelining, is the most sensitive strategy.
#include <cstdio>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "engine/database.h"
#include "engine/sim_executor.h"
#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"

using namespace mjoin;

namespace {

double Run(StrategyKind kind, const JoinQuery& query, const Database& db,
           uint32_t procs, uint32_t batch) {
  auto plan = MakeStrategy(kind)->Parallelize(query, procs, TotalCostModel());
  MJOIN_CHECK(plan.ok()) << plan.status();
  SimExecutor executor(&db);
  SimExecOptions options;
  options.costs.batch_size = batch;
  auto run = executor.Execute(*plan, options);
  MJOIN_CHECK(run.ok()) << run.status();
  return run->response_seconds;
}

}  // namespace

int main() {
  constexpr int kRelations = 10;
  constexpr uint32_t kCardinality = 5000;
  constexpr uint32_t kProcs = 60;
  Database db = MakeWisconsinDatabase(kRelations, kCardinality, /*seed=*/29);
  auto query = MakeWisconsinChainQuery(QueryShape::kRightLinear, kRelations,
                                       kCardinality);
  MJOIN_CHECK(query.ok());

  const uint32_t batches[] = {1, 4, 16, 64, 256, 1024};

  std::printf(
      "Batch-size ablation, right-linear tree (longest pipeline), P=%u, "
      "%u tuples/relation.\n\n",
      kProcs, kCardinality);

  TablePrinter table({"batch [tuples]", "FP [s]", "RD [s]", "SP [s]"});
  for (uint32_t batch : batches) {
    table.AddRow({StrCat(batch),
                  FormatDouble(Run(StrategyKind::kFP, *query, db, kProcs,
                                   batch), 1),
                  FormatDouble(Run(StrategyKind::kRD, *query, db, kProcs,
                                   batch), 1),
                  FormatDouble(Run(StrategyKind::kSP, *query, db, kProcs,
                                   batch), 1)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nExpected: pipelined strategies (FP, RD) have a sweet spot; tiny "
      "batches drown in\nper-batch overhead, huge batches turn the "
      "pipeline into bulk phases. SP, which\nmaterializes everything, "
      "only sees the per-batch overhead shrink.\n");
  return 0;
}
