// Microbenchmarks of the execution-layer primitives: the join hash table
// and the two hash-join operators (Figure 1's simple vs pipelining
// algorithm, including the pipelining join's earlier time-to-first-output,
// which is what enables FP's dataflow execution).
#include <benchmark/benchmark.h>

#include "engine/result.h"
#include "exec/hash_table.h"
#include "exec/pipelining_hash_join.h"
#include "exec/simple_hash_join.h"
#include "storage/wisconsin.h"

namespace mjoin {
namespace {

std::shared_ptr<const Schema> Wisc() {
  return std::make_shared<const Schema>(WisconsinSchema());
}

// A no-cost OpContext that counts emitted rows and remembers when the
// first output row appeared (in consumed input tuples).
class CountingContext : public OpContext {
 public:
  void Charge(Ticks) override {}
  void EmitRow(const std::byte*) override {
    ++emitted;
    if (first_output < 0) first_output = consumed;
  }
  const CostParams& costs() const override { return params; }

  CostParams params;
  int64_t emitted = 0;
  int64_t consumed = 0;
  int64_t first_output = -1;
};

void BM_HashTableInsert(benchmark::State& state) {
  auto n = static_cast<uint32_t>(state.range(0));
  Relation rel = GenerateWisconsin(n, 1);
  for (auto _ : state) {
    JoinHashTable table(Wisc(), kUnique1);
    for (size_t i = 0; i < rel.num_tuples(); ++i) {
      table.Insert(rel.tuple(i).data());
    }
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HashTableInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_HashTableProbe(benchmark::State& state) {
  auto n = static_cast<uint32_t>(state.range(0));
  Relation rel = GenerateWisconsin(n, 1);
  JoinHashTable table(Wisc(), kUnique1);
  for (size_t i = 0; i < rel.num_tuples(); ++i) {
    table.Insert(rel.tuple(i).data());
  }
  size_t matches = 0;
  for (auto _ : state) {
    for (uint32_t k = 0; k < n; ++k) {
      matches += table.Probe(static_cast<int32_t>(k),
                             [](const TupleRef&) {});
    }
  }
  benchmark::DoNotOptimize(matches);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HashTableProbe)->Arg(1000)->Arg(10000)->Arg(100000);

JoinSpec ChainSpec() {
  std::vector<JoinOutputColumn> outputs = {JoinOutputColumn::Left(kUnique2),
                                           JoinOutputColumn::Right(kUnique2)};
  for (size_t c = 2; c < WisconsinSchema().num_columns(); ++c) {
    outputs.push_back(JoinOutputColumn::Right(c));
  }
  auto spec = MakeJoinSpec(Wisc(), Wisc(), 0, 0, std::move(outputs));
  MJOIN_CHECK(spec.ok());
  return *std::move(spec);
}

TupleBatch ToBatch(const Relation& rel, size_t lo, size_t hi) {
  TupleBatch batch(std::make_shared<const Schema>(rel.schema()));
  for (size_t i = lo; i < hi && i < rel.num_tuples(); ++i) {
    batch.AppendRow(rel.tuple(i).data());
  }
  return batch;
}

void BM_SimpleHashJoin(benchmark::State& state) {
  auto n = static_cast<uint32_t>(state.range(0));
  Relation left = GenerateWisconsin(n, 1);
  Relation right = GenerateWisconsin(n, 2);
  for (auto _ : state) {
    SimpleHashJoinOp join(ChainSpec());
    CountingContext ctx;
    const uint32_t kBatch = 256;
    for (size_t lo = 0; lo < n; lo += kBatch) {
      TupleBatch b = ToBatch(left, lo, lo + kBatch);
      join.Consume(SimpleHashJoinOp::kBuildPort, b, &ctx);
    }
    join.InputDone(SimpleHashJoinOp::kBuildPort, &ctx);
    for (size_t lo = 0; lo < n; lo += kBatch) {
      TupleBatch b = ToBatch(right, lo, lo + kBatch);
      join.Consume(SimpleHashJoinOp::kProbePort, b, &ctx);
    }
    join.InputDone(SimpleHashJoinOp::kProbePort, &ctx);
    MJOIN_CHECK(static_cast<uint32_t>(ctx.emitted) == n);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_SimpleHashJoin)->Arg(10000)->Arg(40000);

void BM_PipeliningHashJoin(benchmark::State& state) {
  auto n = static_cast<uint32_t>(state.range(0));
  Relation left = GenerateWisconsin(n, 1);
  Relation right = GenerateWisconsin(n, 2);
  int64_t first_output = 0;
  for (auto _ : state) {
    PipeliningHashJoinOp join(ChainSpec());
    CountingContext ctx;
    const uint32_t kBatch = 256;
    // Interleave both inputs, as the symmetric algorithm expects.
    for (size_t lo = 0; lo < n; lo += kBatch) {
      TupleBatch bl = ToBatch(left, lo, lo + kBatch);
      ctx.consumed += static_cast<int64_t>(bl.num_tuples());
      join.Consume(PipeliningHashJoinOp::kLeftPort, bl, &ctx);
      TupleBatch br = ToBatch(right, lo, lo + kBatch);
      ctx.consumed += static_cast<int64_t>(br.num_tuples());
      join.Consume(PipeliningHashJoinOp::kRightPort, br, &ctx);
    }
    join.InputDone(PipeliningHashJoinOp::kLeftPort, &ctx);
    join.InputDone(PipeliningHashJoinOp::kRightPort, &ctx);
    MJOIN_CHECK(static_cast<uint32_t>(ctx.emitted) == n);
    first_output = ctx.first_output;
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
  // Fraction of the input consumed before the first result appeared: the
  // pipelining join produces output almost immediately (the simple join
  // only after the entire build input).
  state.counters["first_output_frac"] =
      static_cast<double>(first_output) / (2.0 * n);
}
BENCHMARK(BM_PipeliningHashJoin)->Arg(10000)->Arg(40000);

}  // namespace
}  // namespace mjoin

BENCHMARK_MAIN();
