// Reproduces Figure 14 of the paper: the best response time found for each
// query shape and problem size, with the (strategy, processor count) that
// achieved it.
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "engine/experiment.h"

using namespace mjoin;

namespace {

std::string Cell(const ExperimentPoint* best) {
  if (best == nullptr || !best->seconds.has_value()) return "-";
  return StrCat(FormatDouble(*best->seconds, 1), " (",
                StrategyName(best->strategy), best->processors, ")");
}

}  // namespace

int main() {
  CostParams costs;
  bool fast = std::getenv("MJOIN_FAST") != nullptr;
  uint32_t small_card = fast ? 2000 : 5000;
  uint32_t large_card = fast ? 8000 : 40000;

  std::printf(
      "Figure 14: best response times in seconds for all query trees.\n"
      "The strategy and number of nodes of the best run are in "
      "parentheses.\n\n");

  TablePrinter table({"query tree", StrCat(small_card / 1000, "K"),
                      StrCat(large_card / 1000, "K")});
  for (QueryShape shape : kAllShapes) {
    auto out = RunPaperFigure(shape, costs, small_card, large_card,
                              /*verify=*/true);
    if (!out.ok()) {
      std::fprintf(stderr, "FAILED: %s\n", out.status().ToString().c_str());
      return 1;
    }
    table.AddRow({ShapeName(shape), Cell(out->small.Best()),
                  Cell(out->large.Best())});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nPaper's Figure 14 for comparison: left linear 9.4 (FP40) / 34 "
      "(FP80); left bushy 7.0 (FP80) / 34 (FP80);\nwide bushy 5.2 (FP80) / "
      "26 (SE80); right bushy 5.7 (RD80) / 32 (RD80); right linear 10.1 "
      "(FP60) / 33 (RD80).\n");
  return 0;
}
