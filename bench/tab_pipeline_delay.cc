// Reproduces the §2.3.3 result ([WiA93]): under Full Parallel execution,
// each step of a *linear* pipeline (one base operand) adds a roughly
// constant delay, while each step of a *bushy* pipeline (two intermediate
// operands) adds a delay that grows with the operand size. This is the
// paper's explanation for FP's weak spot: bushy pipelines at small
// processor counts and large operands.
#include <cstdio>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "engine/database.h"
#include "engine/sim_executor.h"
#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"

using namespace mjoin;

namespace {

double Run(QueryShape shape, int relations, uint32_t card, uint32_t procs) {
  Database db = MakeWisconsinDatabase(relations, card, /*seed=*/13);
  auto query = MakeWisconsinChainQuery(shape, relations, card);
  MJOIN_CHECK(query.ok()) << query.status();
  auto plan = MakeStrategy(StrategyKind::kFP)
                  ->Parallelize(*query, procs, TotalCostModel());
  MJOIN_CHECK(plan.ok()) << plan.status();
  SimExecutor executor(&db);
  auto run = executor.Execute(*plan, SimExecOptions());
  MJOIN_CHECK(run.ok()) << run.status();
  return run->response_seconds;
}

}  // namespace

int main() {
  // Fixed processors *per join* so that adding pipeline steps does not
  // change the per-join parallelism; the marginal response-time increase
  // per added step estimates the delay per pipeline step.
  constexpr uint32_t kProcsPerJoin = 4;
  const uint32_t cards[] = {1000, 4000, 16000};

  std::printf(
      "FP pipeline-step delay (marginal response time per extra join, "
      "%u processors per join):\n"
      "linear pipeline (right-linear tree) vs bushy pipeline "
      "(left-oriented bushy tree).\n\n",
      kProcsPerJoin);

  TablePrinter table({"operand size", "linear step [s]", "bushy step [s]",
                      "bushy/linear"});
  for (uint32_t card : cards) {
    // Linear: grow a right-linear chain from 4 to 8 relations (3 -> 7
    // joins); each extra join is one linear pipeline step.
    double lin_short = Run(QueryShape::kRightLinear, 4, card,
                           3 * kProcsPerJoin);
    double lin_long = Run(QueryShape::kRightLinear, 8, card,
                          7 * kProcsPerJoin);
    double linear_step = (lin_long - lin_short) / 4.0;

    // Bushy: grow the left-oriented bushy spine from 4 to 8 relations
    // (2 pairs -> 4 pairs: 1 -> 3 bushy spine steps, plus 2 pair joins).
    double bush_short = Run(QueryShape::kLeftOrientedBushy, 4, card,
                            3 * kProcsPerJoin);
    double bush_long = Run(QueryShape::kLeftOrientedBushy, 8, card,
                           7 * kProcsPerJoin);
    // 4 extra joins total, of which 2 are spine (bushy) steps.
    double bushy_step = (bush_long - bush_short) / 4.0;

    table.AddRow({StrCat(card), FormatDouble(linear_step, 3),
                  FormatDouble(bushy_step, 3),
                  FormatDouble(linear_step > 0 ? bushy_step / linear_step : 0,
                               2)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nExpected: the linear step delay stays nearly flat as operands "
      "grow, while the bushy\nstep delay (and the bushy/linear ratio) "
      "grows with the operand size.\n");
  return 0;
}
