// Ablation of the paper's §4.3 cost function (cost = a*n1 + b*n2 + c*r
// with a,b = 1 for base operands / 2 for intermediates, c = 2): how much
// does the quality of the proportional processor allocation depend on it?
// We compare the paper coefficients against a uniform (shape-blind)
// variant and an exaggerated one, for the allocation-sensitive strategies
// (SE, RD, FP).
#include <cstdio>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "engine/database.h"
#include "engine/sim_executor.h"
#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"

using namespace mjoin;

namespace {

double Run(StrategyKind kind, const JoinQuery& query, const Database& db,
           uint32_t procs, const JoinCostCoefficients& coefficients) {
  auto plan = MakeStrategy(kind)->Parallelize(query, procs,
                                              TotalCostModel(coefficients));
  MJOIN_CHECK(plan.ok()) << plan.status();
  SimExecutor executor(&db);
  auto run = executor.Execute(*plan, SimExecOptions());
  MJOIN_CHECK(run.ok()) << run.status();
  return run->response_seconds;
}

}  // namespace

int main() {
  constexpr int kRelations = 10;
  constexpr uint32_t kCardinality = 5000;
  constexpr uint32_t kProcs = 60;
  Database db = MakeWisconsinDatabase(kRelations, kCardinality, /*seed=*/17);

  const JoinCostCoefficients paper{};                    // 1 / 2 / 2
  const JoinCostCoefficients uniform =
      JoinCostCoefficients::Uniform();                   // 1 / 1 / 1
  const JoinCostCoefficients skewed{1.0, 10.0, 2.0};     // over-weights
                                                         // intermediates

  std::printf(
      "Cost-function ablation at P=%u, %u tuples/relation: response time "
      "[s] when the\nallocation uses the paper's coefficients (1/2/2), "
      "uniform (1/1/1), or skewed (1/10/2).\nSP ignores the cost function "
      "(shown for reference).\n\n",
      kProcs, kCardinality);

  TablePrinter table({"shape", "strategy", "paper 1/2/2", "uniform 1/1/1",
                      "skewed 1/10/2"});
  for (QueryShape shape :
       {QueryShape::kWideBushy, QueryShape::kRightOrientedBushy,
        QueryShape::kLeftOrientedBushy}) {
    auto query = MakeWisconsinChainQuery(shape, kRelations, kCardinality);
    MJOIN_CHECK(query.ok());
    for (StrategyKind kind :
         {StrategyKind::kSE, StrategyKind::kRD, StrategyKind::kFP,
          StrategyKind::kSP}) {
      table.AddRow({ShapeName(shape), StrategyName(kind),
                    FormatDouble(Run(kind, *query, db, kProcs, paper), 1),
                    FormatDouble(Run(kind, *query, db, kProcs, uniform), 1),
                    FormatDouble(Run(kind, *query, db, kProcs, skewed), 1)});
    }
    table.AddSeparator();
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nExpected: the simple 1/2/2 estimate is good enough (the paper's "
      "point); a badly\nskewed estimate visibly hurts FP/RD allocation, "
      "while SP is immune.\n");
  return 0;
}
