// Reproduces Figure_12 of the paper: the right_bushy query tree.
#include "bench/figure_main.h"

int main() {
  return mjoin::FigureMain(mjoin::QueryShape::kRightOrientedBushy, "Figure_12");
}
