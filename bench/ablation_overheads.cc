// Ablation of the simulated machine's overhead knobs: which barrier
// actually causes SP's degradation at high processor counts? We rerun the
// left-linear 5K sweep with (a) the calibrated machine, (b) free process
// startup, (c) free stream setup (handshake + broker), and (d) both free.
#include <cstdio>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "engine/database.h"
#include "engine/sim_executor.h"
#include "plan/wisconsin_query.h"
#include "strategy/strategy.h"

using namespace mjoin;

namespace {

double Run(const JoinQuery& query, const Database& db, uint32_t procs,
           const CostParams& costs) {
  auto plan = MakeStrategy(StrategyKind::kSP)
                  ->Parallelize(query, procs, TotalCostModel());
  MJOIN_CHECK(plan.ok()) << plan.status();
  SimExecutor executor(&db);
  SimExecOptions options;
  options.costs = costs;
  auto run = executor.Execute(*plan, options);
  MJOIN_CHECK(run.ok()) << run.status();
  return run->response_seconds;
}

}  // namespace

int main() {
  constexpr int kRelations = 10;
  constexpr uint32_t kCardinality = 5000;
  Database db = MakeWisconsinDatabase(kRelations, kCardinality, /*seed=*/23);
  auto query = MakeWisconsinChainQuery(QueryShape::kLeftLinear, kRelations,
                                       kCardinality);
  MJOIN_CHECK(query.ok());

  CostParams calibrated;
  CostParams no_startup = calibrated;
  no_startup.process_startup = 0;
  CostParams no_streams = calibrated;
  no_streams.stream_handshake = 0;
  no_streams.broker_handshake = 0;
  CostParams neither = no_startup;
  neither.stream_handshake = 0;
  neither.broker_handshake = 0;

  std::printf(
      "SP on the left-linear 5K query: which overhead causes the "
      "degradation at high P?\n(§3.5: startup grows with #processes, "
      "coordination with the n x m tuple streams)\n\n");

  TablePrinter table({"P", "calibrated [s]", "free startup [s]",
                      "free stream setup [s]", "both free [s]"});
  for (uint32_t p : {20u, 40u, 60u, 80u}) {
    table.AddRow({StrCat(p), FormatDouble(Run(*query, db, p, calibrated), 1),
                  FormatDouble(Run(*query, db, p, no_startup), 1),
                  FormatDouble(Run(*query, db, p, no_streams), 1),
                  FormatDouble(Run(*query, db, p, neither), 1)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nExpected: with both barriers free, SP speeds up monotonically; "
      "the stream setup\n(quadratic in P per refragmentation) is the "
      "larger cause of the U-shape.\n");
  return 0;
}
